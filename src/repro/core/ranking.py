"""Relative activity ranking across prefixes (§6 future work).

The paper closes with two directions, both implemented here:

1. **Hit-rate ranking** — "estimate a prefix's cache hit rates over
   time and across domains, as a step towards a relative ranking of
   prefix activity levels".  A busy prefix refreshes its Google cache
   entries continuously, so probes hit almost every visit; a
   barely-active prefix hits rarely.  The per-⟨domain, scope⟩
   attempt/hit counters the probing loop keeps turn directly into a
   per-prefix activity score (mean hit rate across domains).

2. **Combining the techniques via geolocation** — "since users are
   often physically close to and in the same AS as their recursive
   resolver, we can estimate activity at the ⟨region, AS⟩ granularity
   and associate that activity with active prefixes in that
   ⟨region, AS⟩".  DNS-logs gives per-resolver Chromium counts; we
   geolocate each resolver, aggregate to ⟨country, AS⟩, and spread the
   mass uniformly over the prefixes cache probing found active there.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.net.prefix import Prefix
from repro.world.builder import World
from repro.core.cache_probing import CacheProbingResult
from repro.core.dns_logs import DnsLogsResult


@dataclass(frozen=True, slots=True)
class PrefixActivityScore:
    """One prefix's relative activity estimate."""

    prefix: Prefix
    score: float
    attempts: int
    hits: int


def hit_rate_ranking(
    result: CacheProbingResult,
    min_attempts: int = 2,
) -> list[PrefixActivityScore]:
    """Rank active prefixes by mean cache-hit rate across domains.

    Prefixes with fewer than ``min_attempts`` probe visits per domain
    are skipped — one lucky probe says nothing about activity level.
    Returns scores sorted descending.
    """
    if min_attempts < 1:
        raise ValueError("min_attempts must be at least 1")
    # Probes sent to PoPs the prefix's clients never reach always miss
    # and say nothing about activity level, so the rate is computed
    # over the *hitting* PoPs only: pool attempts and hits at PoPs that
    # produced at least one hit for that ⟨domain, scope⟩.  (Pooling
    # rather than taking the best single-PoP rate avoids the upward
    # selection bias of maximising tiny samples.)
    hitting: dict[tuple[Prefix, str], tuple[int, int]] = defaultdict(
        lambda: (0, 0))
    totals: dict[Prefix, tuple[int, int]] = defaultdict(lambda: (0, 0))
    for (pop_id, domain, scope), attempts in result.attempt_counts.items():
        if attempts < min_attempts:
            continue
        hits = result.hit_counts.get((pop_id, domain, scope), 0)
        seen_attempts, seen_hits = totals[scope]
        totals[scope] = (seen_attempts + attempts, seen_hits + hits)
        if hits == 0:
            continue
        pooled_attempts, pooled_hits = hitting[(scope, domain)]
        hitting[(scope, domain)] = (pooled_attempts + attempts,
                                    pooled_hits + hits)
    per_prefix: dict[Prefix, list[float]] = defaultdict(list)
    for (prefix, _domain), (attempts, hits) in hitting.items():
        per_prefix[prefix].append(hits / attempts)
    scores = []
    for prefix, rates in per_prefix.items():
        total_attempts, total_hits = totals[prefix]
        if total_hits == 0:
            continue  # not an active prefix
        scores.append(PrefixActivityScore(
            prefix=prefix, score=sum(rates) / len(rates),
            attempts=total_attempts, hits=total_hits,
        ))
    scores.sort(key=lambda s: (-s.score, s.prefix))
    return scores


@dataclass(frozen=True, slots=True)
class RegionAsActivity:
    """Chromium activity aggregated at ⟨country, AS⟩."""

    country: str
    asn: int
    probe_count: int
    active_prefixes: tuple[Prefix, ...]

    def per_prefix_weight(self) -> float:
        """Probe mass per active prefix in this cell."""
        if not self.active_prefixes:
            return 0.0
        return self.probe_count / len(self.active_prefixes)


def combine_by_region_asn(
    world: World,
    cache_result: CacheProbingResult,
    logs_result: DnsLogsResult,
) -> list[RegionAsActivity]:
    """§6's geolocation join of the two techniques.

    Resolver activity (Chromium probe counts) lands in the resolver's
    ⟨country, AS⟩ cell; the cell's active prefixes come from cache
    probing.  Cells whose resolver cannot be geolocated, or that have
    no active prefixes, are kept with an empty prefix tuple so callers
    can see the unattributable mass.
    """
    # Aggregate resolver counts into cells.
    cell_counts: dict[tuple[str, int], int] = defaultdict(int)
    for resolver_ip, count in logs_result.resolver_counts.items():
        asn = world.routes.origin_of_address(resolver_ip)
        if asn is None:
            continue
        entry = world.geodb.locate_address(resolver_ip)
        country = entry.country if entry is not None else "??"
        cell_counts[(country, asn)] += count
    # Attribute each active prefix to its cell; a scope spanning
    # several announcements is split over its /24s' origins.
    cell_prefixes: dict[tuple[str, int], list[Prefix]] = defaultdict(list)

    def attribute(prefix: Prefix, asn: int) -> None:
        """Record the prefix in its geolocated cell."""
        entry = world.geodb.locate_prefix(prefix)
        country = entry.country if entry is not None else "??"
        cell_prefixes[(country, asn)].append(prefix)

    for prefix in cache_result.active_prefix_set():
        asn = world.routes.origin_of_prefix(prefix)
        if asn is not None:
            attribute(prefix, asn)
            continue
        for sub in prefix.slash24s():
            sub_asn = world.routes.origin_of_prefix(sub)
            if sub_asn is not None:
                attribute(sub, sub_asn)
    cells = []
    for (country, asn), count in cell_counts.items():
        cells.append(RegionAsActivity(
            country=country,
            asn=asn,
            probe_count=count,
            active_prefixes=tuple(sorted(cell_prefixes.get((country, asn),
                                                           ()))),
        ))
    cells.sort(key=lambda c: -c.probe_count)
    return cells


def prefix_activity_estimates(
    cells: list[RegionAsActivity],
) -> dict[Prefix, float]:
    """Flatten the joined cells into per-prefix activity estimates."""
    estimates: dict[Prefix, float] = {}
    for cell in cells:
        weight = cell.per_prefix_weight()
        for prefix in cell.active_prefixes:
            estimates[prefix] = estimates.get(prefix, 0.0) + weight
    return estimates


def rank_correlation(
    scores: dict[Prefix, float],
    truth: dict[Prefix, float],
) -> float:
    """Spearman rank correlation over the common prefixes.

    Validates a ranking against ground truth the paper could not see;
    returns NaN-free 0.0 when fewer than 3 prefixes overlap.
    """
    common = sorted(set(scores) & set(truth))
    if len(common) < 3:
        return 0.0
    from scipy.stats import spearmanr

    rho, _ = spearmanr([scores[p] for p in common],
                       [truth[p] for p in common])
    return float(rho)
