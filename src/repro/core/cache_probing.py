"""The cache-probing measurement pipeline (§3.1).

Gluing the three stages together, interleaved with live client
activity exactly as the real 120-hour measurement was:

1. *scope discovery* against each probe domain's authoritative
   (:mod:`repro.core.scope_discovery`);
2. *calibration* of per-PoP service radii
   (:mod:`repro.core.calibration`);
3. the *probing loop*: every query scope is assigned to the PoPs whose
   service radius could cover its geolocation (error radius included),
   and probed there continuously — redundant, non-recursive, TCP, ECS
   queries — while the world's clients keep browsing.

A prefix is *active* if any probe returned a cache hit with return
scope > 0; the active prefix is the response scope.

Sharded execution (see :mod:`repro.parallel`): the pipeline optionally
takes a *shard* — any object with ``shard_id``/``num_shards`` ints and
an ``owns(scope) -> bool`` predicate that partitions query scopes.  A
sharded pipeline builds the **full** assignment but visits only the
schedule positions it owns: at planning time a *synchronization
summary* (:mod:`repro.parallel.summary`) pre-computes, per slot and
PoP, the owned offsets plus the aggregate side effects of every
foreign span — batched clock advances for foreign retry backoffs,
rate-limit token debits, breaker events and budget consumption — so
the hot loop is O(owned targets) yet every owned probe still happens
at the same simulated instant, against the same shared state, as in
the serial run.  Each hit carries its global schedule position
``(slot, pop rank, offset)`` so a merge can reassemble the serial
result list exactly.  The legacy ``sync_mode="ghost"`` walk (visit
everything, send only owned) is kept as a cross-check oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet
from repro.net.routing import RouteTable
from repro.world.activity import ActivityConfig, ActivitySimulator
from repro.world.builder import World
from repro.world.domains_catalog import probe_domains
from repro.world.model import DomainSpec
from repro.world.vantage import VantagePoint, deploy_vantage_points
from repro.core.calibration import (
    CalibrationConfig,
    CalibrationResult,
    calibrate,
)
from repro.core.prober import GoogleProber
from repro.core.resilient import (
    ProbeHealthReport,
    ResilienceConfig,
    ResilientProber,
)
from repro.core.scope_discovery import DiscoveryResult, discover_all
from repro.obs import runtime as obs_runtime
from repro.sim.clock import HOUR


@dataclass(frozen=True, slots=True)
class CacheProbingConfig:
    """Pipeline parameters (defaults sized for test worlds)."""

    warmup_hours: float = 3.0
    measurement_hours: float = 12.0
    redundancy: int = 3              # the paper uses 5
    probe_loops: int = 3             # full passes over the assignment
    #: Alternative budget specification: target visits per second per
    #: PoP, the way the paper states its budget ("50 prefixes per
    #: second per domain at each PoP").  When set, it overrides
    #: ``probe_loops``.
    probe_rate_qps: float | None = None
    seed: int = 17
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    #: Retry/backoff, circuit breakers and failover for the probing
    #: loop.  Off by default: the happy-path loop is bit-identical to
    #: the pre-resilience pipeline.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def __post_init__(self) -> None:
        if self.warmup_hours < 0:
            raise ValueError("warmup_hours must not be negative")
        if self.measurement_hours <= 0:
            raise ValueError("measurement_hours must be positive")
        if self.redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        if self.probe_loops < 1:
            raise ValueError("probe_loops must be at least 1")
        if self.probe_rate_qps is not None and self.probe_rate_qps <= 0:
            raise ValueError("probe_rate_qps must be positive")


def _probe_record(pop_id: str, domain: DomainSpec, scope: Prefix,
                  result) -> dict:
    """The journal record for one resilient probe batch."""
    record = {"type": "probe", "pop": pop_id, "dom": str(domain.name),
              "scope": str(scope)}
    if result is None:
        record["ok"] = False  # budget exhausted or vantage died
        return record
    record.update(ok=True, sent=result.queries_sent, refused=result.refused,
                  timed_out=result.timed_out, hit=result.hit,
                  rs=result.response_scope)
    return record


@dataclass(slots=True)
class _ProbingLoopState:
    """The probing loop's complete mutable state.

    Everything the loop reads or writes lives here (not in closures),
    so a campaign snapshot can pickle it mid-measurement and a resumed
    process continues at ``next_slot`` as if nothing happened.
    ``targets_by_pop`` and ``all_targets`` share the per-target list
    objects; pickling the state as one graph preserves that identity.
    """

    slots: int
    targets_by_pop: dict[str, list[list]]
    all_targets: list[list]
    cursors: dict[str, int]
    streaks: dict[str, int]
    #: per-PoP sizes of the *original* assignment (before any
    #: degraded-PoP reassignment moved targets around).
    assignment_sizes: dict[str, int] = field(default_factory=dict)
    next_slot: int = 0
    hits: list["CacheHitRecord"] = field(default_factory=list)
    scope_pairs: list[tuple[str, int, int]] = field(default_factory=list)
    seen: set[tuple[str, str, Prefix]] = field(default_factory=set)
    attempts: dict[tuple[str, str, Prefix], int] = field(default_factory=dict)
    hit_counts: dict[tuple[str, str, Prefix], int] = \
        field(default_factory=dict)
    hourly_attempts: dict[Prefix, list[int]] = field(default_factory=dict)
    hourly_hits: dict[Prefix, list[int]] = field(default_factory=dict)
    #: breaker transitions already written to the journal.
    journaled_transitions: int = 0
    #: per-hit / per-scope-pair global schedule positions
    #: (slot, pop rank, offset), aligned with ``hits``/``scope_pairs`` —
    #: the sort keys a shard merge needs to reproduce serial list order.
    hit_seq: list[tuple[int, int, int]] = field(default_factory=list)
    pair_seq: list[tuple[int, int, int]] = field(default_factory=list)
    #: the raw prober's counter when the loop started, so a merge can
    #: separate the (replicated) pre-loop probes from loop probes.
    probes_at_loop_start: int = 0
    #: the shard's synchronization summary (repro.parallel.summary
    #: .SyncPlan), built once when the assignment is frozen; None for
    #: serial runs and for the legacy ghost-visit mode.  Pickled with
    #: the loop state so a resumed shard replays the identical plan.
    sync_plan: object | None = None


@dataclass(slots=True)
class _RunState:
    """Where a (possibly interrupted) pipeline run has got to.

    Stage results are filled in order; a resumed run skips every stage
    whose result is already present and re-enters the probing loop at
    the snapshot's slot.
    """

    discovery: DiscoveryResult | None = None
    measurement_start: float = 0.0
    warmup_done: bool = False
    calibration: CalibrationResult | None = None
    loop: _ProbingLoopState | None = None


@dataclass(frozen=True, slots=True)
class CacheHitRecord:
    """One activity-evidencing cache hit."""

    pop_id: str
    domain: str
    query_scope: Prefix
    response_scope: int
    timestamp: float

    def active_prefix(self) -> Prefix:
        """The prefix this hit marks active: the response scope."""
        return Prefix.from_address(self.query_scope.network,
                                   self.response_scope)


@dataclass(slots=True)
class CacheProbingResult:
    """Everything the measurement produced.

    ``attempt_counts``/``hit_counts`` record, per ⟨domain, query
    scope⟩, how many probe visits were made and how many hit — the raw
    material for the §6 relative-activity ranking (a busier prefix
    keeps its cache entries fresh more of the time, so it hits more
    often).
    """

    hits: list[CacheHitRecord]
    probes_sent: int
    calibration: CalibrationResult
    discovery: DiscoveryResult
    assignment_sizes: dict[str, int]
    scope_pairs: list[tuple[str, int, int]]  # (domain, query len, resp len)
    #: [start, end) of the measurement (activity + probing) window —
    #: excludes the stage-1 authoritative scans, whose ECS-bearing
    #: queries would otherwise pollute the Traffic Manager dataset.
    measurement_window: tuple[float, float] = (0.0, 0.0)
    #: keyed by (pop_id, domain, query scope) — per-PoP resolution so a
    #: ranking can use the prefix's best-serving PoP and ignore probes
    #: sent to PoPs its clients never reach.
    attempt_counts: dict[tuple[str, str, Prefix], int] = \
        field(default_factory=dict)
    hit_counts: dict[tuple[str, str, Prefix], int] = \
        field(default_factory=dict)
    #: per-prefix probe outcomes bucketed by UTC hour of day (24 ints
    #: each) — the raw material for §6's diurnal human-vs-bot signal.
    hourly_attempts: dict[Prefix, list[int]] = field(default_factory=dict)
    hourly_hits: dict[Prefix, list[int]] = field(default_factory=dict)
    #: structured account of errors, retries, breaker transitions and
    #: coverage lost to faults (see repro.core.resilient).
    health: ProbeHealthReport | None = None
    #: shard-merge plumbing, populated only for sharded runs: each
    #: hit's / scope pair's global schedule position, plus how many of
    #: ``probes_sent`` predate the loop (discovery + calibration, which
    #: every shard replica performs identically).
    hit_seq: list[tuple[int, int, int]] | None = None
    pair_seq: list[tuple[int, int, int]] | None = None
    probes_before_loop: int = 0
    #: digest of the shard's synchronization summary — a pure function
    #: of the global schedule, so every shard of a campaign must report
    #: the same value (the merge enforces it); None for serial runs.
    sync_digest: str | None = None

    # -- derived views ------------------------------------------------------

    def domains(self) -> list[str]:
        """Sorted domain names that produced hits."""
        return sorted({h.domain for h in self.hits})

    def active_prefix_set(self, domain: str | None = None) -> PrefixSet:
        """Active prefixes (response scopes), optionally per domain."""
        prefixes = PrefixSet()
        for hit in self.hits:
            if domain is None or hit.domain == domain:
                prefixes.add(hit.active_prefix())
        return prefixes

    def active_slash24_ids(self, domain: str | None = None) -> set[int]:
        """Upper-bound /24 expansion (the paper's Table 1 convention)."""
        return self.active_prefix_set(domain).slash24_ids()

    def active_asns(self, routes: RouteTable,
                    domain: str | None = None) -> set[int]:
        """ASes containing at least one active prefix.

        Prefixes coarser than any covering announcement are attributed
        through their /24 subblocks.
        """
        asns: set[int] = set()
        for prefix in self.active_prefix_set(domain):
            origin = routes.origin_of_prefix(prefix)
            if origin is not None:
                asns.add(origin)
                continue
            for sub in prefix.slash24s():
                origin = routes.origin_of_prefix(sub)
                if origin is not None:
                    asns.add(origin)
        return asns

    def hit_count(self, domain: str | None = None) -> int:
        """Number of distinct hits (optionally one domain's)."""
        return sum(1 for h in self.hits
                   if domain is None or h.domain == domain)


class CacheProbingPipeline:
    """Runs the full §3.1 measurement against a world."""

    def __init__(
        self,
        world: World,
        config: CacheProbingConfig | None = None,
        activity_config: ActivityConfig | None = None,
        vantage_points: list[VantagePoint] | None = None,
        shard=None,
    ) -> None:
        self.world = world
        self.config = config or CacheProbingConfig()
        self.activity_config = activity_config or ActivityConfig()
        #: optional shard spec (see repro.parallel.planner.ShardSpec):
        #: ``owns(scope)`` decides which targets this replica probes.
        self.shard = shard
        self._owned_memo: dict[Prefix, bool] = {}
        #: whether ghost visits must consume rate-limit tokens; set
        #: once the assignment is frozen (see _make_loop_state).
        self._ghost_tokens = False
        if (shard is not None and self.config.resilience.enabled
                and getattr(shard, "sync_mode", "summary") == "ghost"):
            # The legacy ghost walk has no way to replicate a foreign
            # shard's retry backoffs, which advance the *shared* clock.
            # Summary mode (the default) replays them as batched clock
            # advances, so only ghost mode refuses resilience.
            raise ValueError(
                "ghost-mode sharding requires resilience.enabled=False: "
                "retry backoff advances the simulated clock, which "
                "would desynchronise the shards' schedules"
            )
        self.vantage_points = (
            deploy_vantage_points(world) if vantage_points is None
            else vantage_points
        )
        self.prober = GoogleProber(world, self.vantage_points,
                                   redundancy=self.config.redundancy)
        self.resilient = ResilientProber(
            self.prober,
            world.clock,
            self.config.resilience,
            seed=self.config.seed,
            faults=world.faults,
        )
        self.simulator = ActivitySimulator(world, self.activity_config,
                                           seed=self.config.seed)
        # The ambient telemetry bundle, captured once so it travels
        # inside pickled campaign state: a resumed run keeps counting
        # where the dead one stopped.  Inert by contract — the bundle
        # never touches the clock, RNG streams or any probe state.
        self.telemetry = obs_runtime.current()
        self._obs_enabled = self.telemetry.enabled
        self._probe_spans = (self._obs_enabled
                             and self.telemetry.trace_config.probe_spans)
        self._probe_domains = probe_domains(world.domains)
        if not self._probe_domains:
            raise ValueError(
                "no eligible probe domains in this world: the §3.1 "
                "technique needs at least one ECS-supporting domain "
                "with TTL > 60 s"
            )
        #: in-flight run progress; carried on the pipeline so campaign
        #: snapshots capture it and a resumed process continues mid-run.
        self._run_state: _RunState | None = None

    @property
    def probe_domain_specs(self) -> list[DomainSpec]:
        """The §3.1.1 probe-domain list in use."""
        return list(self._probe_domains)

    # -- pipeline ------------------------------------------------------------

    def run(self, checkpointer=None) -> CacheProbingResult:
        """Run discovery, warmup, calibration and the probing loop.

        With a :class:`~repro.persist.campaign.CampaignCheckpointer`
        attached, every phase boundary, probe batch, breaker transition
        and slot tick is journaled and the loop state is snapshotted on
        the configured cadence; a pipeline restored from such a
        snapshot continues exactly where the dead process stopped.
        Checkpointing is purely observational — a checkpointed run is
        bit-identical to a bare one.
        """
        world = self.world
        journal = checkpointer.record if checkpointer is not None else None
        state = self._ensure_stages(checkpointer)
        if state.loop is None:
            with self.telemetry.phase("planning"):
                assignment = self._assign(state.discovery,
                                          state.calibration)
                state.loop = self._make_loop_state(assignment)
        self._run_probing(state.loop, checkpointer)
        loop = state.loop
        if self.shard is None:
            accountable = loop.all_targets
        else:
            # A shard answers only for the targets it owns; foreign
            # targets are other shards' to cover, and the merge sums
            # the per-shard accounts back to the serial totals.
            accountable = [t for t in loop.all_targets if self._owns(t[1])]
        health = self.resilient.finalize(
            targets_assigned=len(accountable),
            targets_probed=sum(1 for t in accountable if t[2] > 0),
            window_s=world.clock.now - state.measurement_start,
        )
        if journal:
            journal({"type": "phase", "name": "probing_done",
                     "now": world.clock.now, "sent": health.sent,
                     "hits": health.hits})
        result = CacheProbingResult(
            hits=loop.hits,
            probes_sent=self.prober.probes_sent,
            calibration=state.calibration,
            discovery=state.discovery,
            assignment_sizes=dict(loop.assignment_sizes),
            scope_pairs=loop.scope_pairs,
            attempt_counts=loop.attempts,
            hit_counts=loop.hit_counts,
            hourly_attempts=loop.hourly_attempts,
            hourly_hits=loop.hourly_hits,
            measurement_window=(state.measurement_start, world.clock.now),
            health=health,
            hit_seq=list(loop.hit_seq) if self.shard is not None else None,
            pair_seq=list(loop.pair_seq) if self.shard is not None else None,
            probes_before_loop=loop.probes_at_loop_start,
            sync_digest=(loop.sync_plan.digest
                         if loop.sync_plan is not None else None),
        )
        if self._obs_enabled:
            self.telemetry.span(
                "campaign", "run", state.measurement_start,
                world.clock.now,
                {"sent": health.sent, "hits": health.hits,
                 "slots": loop.slots})
            if self.telemetry.home is not None:
                self.telemetry.flush(self.telemetry.home)
        self._run_state = None
        return result

    # -- bootstrap stages ----------------------------------------------------

    def _ensure_stages(self, checkpointer) -> _RunState:
        """Run (or skip, when resuming) discovery, warmup and
        calibration, journaling each phase boundary exactly once."""
        config = self.config
        world = self.world
        journal = checkpointer.record if checkpointer is not None else None
        state = self._run_state
        if state is None:
            state = self._run_state = _RunState()
        if state.discovery is None:
            with self.telemetry.phase("planning"):
                state.discovery = discover_all(
                    self._probe_domains,
                    {name: server for name, server
                     in world.authoritative_servers.items()},
                    world.routes,
                )
            # Separate the discovery scans from the measurement epoch:
            # the validation datasets are collected over the
            # measurement window only, as the paper compares against "a
            # full day" of CDN logs.
            world.clock.advance(1.0)
            state.measurement_start = world.clock.now
            if journal:
                journal({"type": "phase", "name": "discovery_done",
                         "now": world.clock.now})
        if not state.warmup_done:
            if config.warmup_hours > 0:
                with self.telemetry.phase("activity"):
                    self.simulator.run(config.warmup_hours * HOUR)
            state.warmup_done = True
            if journal:
                journal({"type": "phase", "name": "warmup_done",
                         "now": world.clock.now})
        if state.calibration is None:
            with self.telemetry.phase("planning"):
                state.calibration = calibrate(
                    world, self.prober, self._probe_domains,
                    config.calibration, seed=config.seed,
                )
            if journal:
                journal({"type": "phase", "name": "calibration_done",
                         "now": world.clock.now,
                         "probes": self.prober.probes_sent})
            if checkpointer is not None:
                checkpointer.snapshot()
        return state

    def bootstrap(
        self, checkpointer=None,
    ) -> dict[str, list[tuple[DomainSpec, Prefix]]]:
        """Run the pre-loop stages and return the frozen assignment.

        The continuous measurement service (:mod:`repro.service`) uses
        the pipeline for discovery, warmup and calibration, then takes
        over scheduling itself: the returned mapping is each reachable
        PoP's eligible ⟨domain, query scope⟩ targets.  Safe to re-enter
        after a crash — completed stages are skipped, exactly as in
        :meth:`run`.
        """
        state = self._ensure_stages(checkpointer)
        return self._assign(state.discovery, state.calibration)

    @property
    def measurement_start(self) -> float:
        """Sim time at which the measurement epoch began (post-discovery)."""
        if self._run_state is None:
            raise RuntimeError("no run in progress")
        return self._run_state.measurement_start

    # -- assignment -----------------------------------------------------------

    def _assign(
        self,
        discovery: DiscoveryResult,
        calibration: CalibrationResult,
    ) -> dict[str, list[tuple[DomainSpec, Prefix]]]:
        """Assign each ⟨domain, query scope⟩ to its plausible PoPs: the
        ones whose service radius could reach the prefix's claimed
        location, allowing for the claimed error radius."""
        world = self.world
        pops = {d.pop_id: d.pop for d in world.pop_descriptors}
        assignment: dict[str, list[tuple[DomainSpec, Prefix]]] = {
            pop_id: [] for pop_id in self.prober.reachable_pops
        }
        for domain in self._probe_domains:
            plan = discovery.plan_for(str(domain.name))
            for scope in plan.query_scopes:
                entry = world.geodb.locate_prefix(scope)
                for pop_id in self.prober.reachable_pops:
                    if entry is not None:
                        distance = entry.location.distance_km(
                            pops[pop_id].location)
                        reach = (calibration.radius_of(pop_id)
                                 + entry.error_radius_km)
                        if distance > reach:
                            continue
                    assignment[pop_id].append((domain, scope))
        return assignment

    # -- the probing loop --------------------------------------------------

    def _nearest_available_pop(self, dead_pop: str,
                               candidates: list[str]) -> str | None:
        """The closest reachable PoP (by PoP location) that can take
        over a degraded PoP's targets right now."""
        pops = {d.pop_id: d.pop for d in self.world.pop_descriptors}
        home = pops[dead_pop].location
        ranked = sorted(
            (pop_id for pop_id in candidates
             if pop_id != dead_pop and self.resilient.pop_available(pop_id)),
            key=lambda pop_id: (home.distance_km(pops[pop_id].location),
                                pop_id),
        )
        return ranked[0] if ranked else None

    def _make_loop_state(
        self,
        assignment: dict[str, list[tuple[DomainSpec, Prefix]]],
    ) -> _ProbingLoopState:
        """Freeze the assignment into the loop's resumable state."""
        config = self.config
        if self.shard is not None:
            # Derive the partition from the frozen assignment — every
            # shard replica computes the identical assignment, hence
            # the identical plan, with no coordination.
            self.shard.bind(assignment)
        rng = random.Random(config.seed + 3)
        # Shuffle each PoP's list once so probing order is not biased
        # by address order, then walk it cyclically across slots.
        for targets in assignment.values():
            rng.shuffle(targets)
        # Mutable per-target state: [domain, scope, probed_batches].
        targets_by_pop: dict[str, list[list]] = {
            pop_id: [[domain, scope, 0] for domain, scope in entries]
            for pop_id, entries in assignment.items()
        }
        loop = _ProbingLoopState(
            slots=max(1, round(config.measurement_hours * HOUR
                               / self.activity_config.slot_seconds)),
            targets_by_pop=targets_by_pop,
            all_targets=[t for targets in targets_by_pop.values()
                         for t in targets],
            cursors={pop_id: 0 for pop_id in targets_by_pop},
            streaks={pop_id: 0 for pop_id in targets_by_pop},
            assignment_sizes={pop_id: len(targets) for pop_id, targets
                              in targets_by_pop.items()},
            probes_at_loop_start=self.prober.probes_sent,
        )
        if self.shard is not None:
            if getattr(self.shard, "sync_mode", "summary") == "ghost":
                self._ghost_tokens = self._bucket_contended(loop)
            else:
                loop.sync_plan = self._build_sync_plan(loop)
        return loop

    def _build_sync_plan(self, loop: _ProbingLoopState):
        """Derive this shard's synchronization summary from the frozen
        assignment (see :mod:`repro.parallel.summary`).

        Runs once, after the assignment is frozen and before the first
        slot — ``clock.now`` here is exactly the loop's start instant,
        which the builder's mirror clock replays.
        """
        from repro.parallel.summary import build_sync_plan

        world = self.world
        vantages = {}
        for pop_id in loop.targets_by_pop:
            vantage = self.prober.vantage_for(pop_id)
            vantages[pop_id] = (
                vantage.source_ip,
                f"{vantage.region.provider}:{vantage.region.region}",
            )
        faults = world.faults
        return build_sync_plan(
            owns=self._owns,
            targets_by_pop=loop.targets_by_pop,
            slots=loop.slots,
            slot_seconds=self.activity_config.slot_seconds,
            start_now=world.clock.now,
            config=self.config,
            vantages=vantages,
            pop_locations={d.pop_id: d.pop.location
                           for d in world.pop_descriptors},
            faults_config=(faults.config if faults is not None
                           and faults.enabled else None),
            bucket=world.public_dns.tcp_bucket_params,
            tokens_tracked=self._bucket_contended(loop),
        )

    def _bucket_contended(self, loop: _ProbingLoopState) -> bool:
        """Whether this campaign's probe volume can deplete the
        resolver's per-vantage TCP token bucket.

        All of a slot's probes fire at the same simulated instant, and
        the bucket is full at slot start (it refills completely during
        the slot's activity).  At or below ``capacity`` queries per
        vantage per slot, every acquire succeeds in serial and in any
        shard alike, so token counts are unobservable and ghost visits
        may skip the (costly) token accounting.  Above capacity, which
        probes get REFUSED depends on arrival order within the
        instant, so ghosts must consume tokens to keep every replica's
        bucket in lock-step with the serial run.

        The decision is a pure function of the frozen assignment,
        which every replica computes identically.
        """
        from repro.dns.public_dns import TCP_QPS_LIMIT

        config = self.config
        per_vantage: dict[int, int] = {}
        for pop_id, targets in loop.targets_by_pop.items():
            if not targets:
                continue
            if config.probe_rate_qps is not None:
                per_slot = max(1, round(
                    config.probe_rate_qps
                    * self.activity_config.slot_seconds))
            else:
                per_slot = max(1, (len(targets) * config.probe_loops
                                   + loop.slots - 1) // loop.slots)
            source = self.prober.vantage_for(pop_id).source_ip
            per_vantage[source] = (per_vantage.get(source, 0)
                                   + per_slot * config.redundancy)
        return max(per_vantage.values(), default=0) > TCP_QPS_LIMIT

    def _owns(self, scope: Prefix) -> bool:
        """Whether this replica probes targets with this query scope."""
        if self.shard is None:
            return True
        owned = self._owned_memo.get(scope)
        if owned is None:
            owned = self._owned_memo[scope] = self.shard.owns(scope)
        return owned

    def _run_probing(self, loop: _ProbingLoopState, checkpointer) -> None:
        """Walk the measurement window slot by slot, interleaving client
        activity with probing, from wherever ``loop`` left off.

        Probes flow through the resilient driver: unavailable PoPs
        (open breaker, vantage outage) skip their slot; a PoP that
        stays unavailable hands its targets to the next-nearest
        reachable PoP; targets nobody could probe are reported as
        uncovered in the health report rather than silently dropped.
        """
        journal = checkpointer.record if checkpointer is not None else None
        resilient = self.resilient
        clock = self.world.clock
        telemetry = self.telemetry
        while loop.next_slot < loop.slots:
            index = loop.next_slot
            slot_start = clock.now
            with telemetry.phase("activity"):
                self.simulator.run(self.activity_config.slot_seconds)
            with telemetry.phase("probing"):
                self._probe_one_slot(loop, journal)
            loop.next_slot = index + 1
            if telemetry.enabled:
                registry = telemetry.registry
                registry.counter("slots.completed").inc()
                registry.gauge("progress.slots_done").set(index + 1,
                                                          clock.now)
                registry.gauge("progress.slots_total").set(loop.slots,
                                                           clock.now)
                self.world.public_dns.harvest_telemetry(registry,
                                                        clock.now)
                if telemetry.trace_config.samples_slot(index):
                    telemetry.span("slot", str(index), slot_start,
                                   clock.now,
                                   {"sent": resilient.report.sent,
                                    "hits": resilient.report.hits})
                telemetry.maybe_flush(index)
            if journal:
                transitions = resilient.report.breaker_transitions
                for move in transitions[loop.journaled_transitions:]:
                    journal({"type": "breaker", "pop": move.pop_id,
                             "at": move.at, "old": move.old.value,
                             "new": move.new.value})
                loop.journaled_transitions = len(transitions)
                journal({"type": "slot", "index": index, "now": clock.now,
                         "ticks": clock.ticks,
                         "sent": resilient.report.sent})
            if checkpointer is not None:
                checkpointer.maybe_snapshot(index)

    def _reassign(self, loop: _ProbingLoopState, dead_pop: str) -> None:
        """Move a degraded PoP's targets to the nearest live one."""
        new_pop = self._nearest_available_pop(
            dead_pop, list(loop.targets_by_pop))
        if new_pop is None:
            return  # nobody can take over; targets stay, and end
            # up uncovered if the PoP never recovers.
        moved = loop.targets_by_pop[dead_pop]
        if not moved:
            return
        loop.targets_by_pop[new_pop].extend(moved)
        loop.targets_by_pop[dead_pop] = []
        self.resilient.note_reassignment(dead_pop, len(moved))

    def _sync_divergence(self, message: str):
        from repro.parallel.summary import SyncPlanDivergence
        raise SyncPlanDivergence(message)

    def _apply_sync_ops(self, ops) -> None:
        """Replay a span of foreign-shard side effects (see
        :mod:`repro.parallel.summary` for the op vocabulary)."""
        if self._obs_enabled:
            with self.telemetry.profiler.phase("summary_replay"):
                self._apply_sync_ops_inner(ops)
        else:
            self._apply_sync_ops_inner(ops)

    def _apply_sync_ops_inner(self, ops) -> None:
        clock = self.world.clock
        public_dns = self.world.public_dns
        resilient = self.resilient
        for op in ops:
            kind = op[0]
            if kind == "adv":
                clock.advance_batch(op[1], op[2])
            elif kind == "tok":
                public_dns.debit_tcp_tokens(op[1], op[2])
            elif kind == "brk":
                resilient.apply_foreign_breaker(op[1], op[2])
            elif kind == "bud":
                resilient.consume_foreign_budget(op[1])
            else:  # pragma: no cover - plan construction bug
                self._sync_divergence(f"unknown sync op {op!r}")

    def _probe_one_slot(self, loop: _ProbingLoopState, journal) -> None:
        """Probe each PoP's next assignment chunk for this slot."""
        from repro.sim.clock import DAY
        config = self.config
        resilience = config.resilience
        resilient = self.resilient
        if resilient.budget_exhausted:
            return
        utc_hour = int((self.world.clock.now % DAY) // HOUR)
        slot_index = loop.next_slot
        plan = loop.sync_plan
        slot_plan = plan.slots[slot_index] if plan is not None else None
        for pop_rank, pop_id in enumerate(loop.targets_by_pop):
            targets = loop.targets_by_pop[pop_id]
            if not targets:
                continue
            pop_plan = (slot_plan.get(pop_id)
                        if slot_plan is not None else None)
            if not resilient.pop_available(pop_id):
                if slot_plan is not None and (
                        pop_plan is None or not pop_plan.skipped):
                    self._sync_divergence(
                        f"slot {slot_index}: plan expected {pop_id} to "
                        "be available but the live check disagrees")
                loop.streaks[pop_id] += 1
                resilient.note_skipped_slot(pop_id)
                if (resilience.enabled and resilience.reassign
                        and loop.streaks[pop_id]
                        >= resilience.reassign_after_slots):
                    self._reassign(loop, pop_id)
                continue
            if slot_plan is not None and (
                    pop_plan is None or pop_plan.skipped):
                self._sync_divergence(
                    f"slot {slot_index}: plan expected {pop_id} to be "
                    "skipped but the live check finds it available")
            loop.streaks[pop_id] = 0
            if config.probe_rate_qps is not None:
                per_slot = max(1, round(
                    config.probe_rate_qps
                    * self.activity_config.slot_seconds))
            else:
                per_slot = max(1, (len(targets) * config.probe_loops
                                   + loop.slots - 1) // loop.slots)
            cursor = loop.cursors[pop_id]
            if pop_plan is not None:
                if per_slot != pop_plan.per_slot:
                    self._sync_divergence(
                        f"slot {slot_index}: {pop_id} chunk size "
                        f"{per_slot} != planned {pop_plan.per_slot}")
                self._probe_pop_synced(loop, pop_id, pop_rank, targets,
                                       cursor, pop_plan, slot_index,
                                       utc_hour, journal)
            else:
                for offset in range(per_slot):
                    target = targets[(cursor + offset) % len(targets)]
                    if not self._owns(target[1]):
                        # Ghost visit (legacy sync_mode="ghost"):
                        # another shard's target.  The visit occupies
                        # its schedule position but sends and records
                        # nothing; when probe volume can deplete the
                        # resolver's token bucket it still consumes the
                        # tokens its probes would have, so bucket
                        # REFUSEDs fall on the same probes as serially.
                        if self._ghost_tokens:
                            self.prober.probe_ghost(pop_id, target[0].name,
                                                    target[1])
                        continue
                    if not self._visit_owned(loop, pop_id, pop_rank,
                                             targets, cursor, offset,
                                             slot_index, utc_hour,
                                             journal):
                        break
            loop.cursors[pop_id] = (cursor + per_slot) % len(targets)

    def _probe_pop_synced(self, loop: _ProbingLoopState, pop_id: str,
                          pop_rank: int, targets: list, cursor: int,
                          pop_plan, slot_index: int, utc_hour: int,
                          journal) -> None:
        """Walk one PoP's slot from its synchronization summary: apply
        each step's foreign ops, then probe the owned offset live."""
        steps = pop_plan.steps
        for position, (ops, offset) in enumerate(steps):
            if ops:
                self._apply_sync_ops(ops)
            if not self._visit_owned(loop, pop_id, pop_rank, targets,
                                     cursor, offset, slot_index,
                                     utc_hour, journal):
                if position + 1 < len(steps):
                    self._sync_divergence(
                        f"slot {slot_index}: {pop_id} stopped at owned "
                        f"offset {offset} but the plan has "
                        f"{len(steps) - position - 1} more steps")
                break
        if pop_plan.tail:
            self._apply_sync_ops(pop_plan.tail)

    def _visit_owned(self, loop: _ProbingLoopState, pop_id: str,
                     pop_rank: int, targets: list, cursor: int,
                     offset: int, slot_index: int, utc_hour: int,
                     journal) -> bool:
        """One owned schedule visit; False when the serial loop would
        stop this PoP's slot here (budget/vantage death, open breaker).
        """
        resilient = self.resilient
        target = targets[(cursor + offset) % len(targets)]
        domain, scope = target[0], target[1]
        result = resilient.probe(pop_id, domain.name, scope)
        if journal:
            journal(_probe_record(pop_id, domain, scope, result))
        if self._probe_spans:
            self.telemetry.span(
                "probe", f"{slot_index}/{pop_rank}/{offset}",
                self.world.clock.now, self.world.clock.now,
                {"pop": pop_id, "dom": str(domain.name),
                 "scope": str(scope),
                 "hit": bool(result is not None and result.hit)})
        if result is None:
            # Budget exhausted or vantage died mid-slot.
            return False
        target[2] += 1
        count_key = (pop_id, str(domain.name), scope)
        loop.attempts[count_key] = \
            loop.attempts.get(count_key, 0) + 1
        if scope not in loop.hourly_attempts:
            loop.hourly_attempts[scope] = [0] * 24
            loop.hourly_hits[scope] = [0] * 24
        loop.hourly_attempts[scope][utc_hour] += 1
        if result.is_activity_evidence:
            loop.hit_counts[count_key] = \
                loop.hit_counts.get(count_key, 0) + 1
            loop.hourly_hits[scope][utc_hour] += 1
            assert result.response_scope is not None
            loop.scope_pairs.append((str(domain.name), scope.length,
                                     result.response_scope))
            loop.pair_seq.append((slot_index, pop_rank, offset))
            key = (pop_id, str(domain.name), scope)
            if key not in loop.seen:
                loop.seen.add(key)
                loop.hit_seq.append((slot_index, pop_rank, offset))
                loop.hits.append(CacheHitRecord(
                    pop_id=pop_id,
                    domain=str(domain.name),
                    query_scope=scope,
                    response_scope=min(result.response_scope, 32),
                    timestamp=self.world.clock.now,
                ))
        if (self.config.resilience.enabled
                and not resilient.pop_available(pop_id)):
            # The breaker opened mid-slot; stop hammering.
            return False
        return True
