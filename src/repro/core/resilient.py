"""Resilient probing on top of the raw :class:`GoogleProber`.

The paper's campaign ran for 120 hours against infrastructure it did
not control: PoPs REFUSE over-eager probing (§3.1.1), packets get lost,
vantage points die.  This module gives the probing loop the machinery a
production deployment needs to survive that:

* **retries with exponential backoff** and deterministic jitter, driven
  by the sim :class:`~repro.sim.clock.Clock` and an event-keyed jitter
  stream (:class:`~repro.sim.streams.KeyedStream`) — waiting out a
  REFUSED burst or a loss blip costs simulated time, exactly like the
  real campaign, and the wait depends only on *which* probe is
  retrying, so retries stay legal under sharded execution;
* a per-PoP **circuit breaker** (closed → open → half-open → closed)
  that stops hammering a PoP after consecutive REFUSED/timeout
  outcomes and re-tests it after a cooldown;
* a per-campaign **probe budget** capping total queries spent;
* **graceful degradation**: when a PoP's breaker stays open or its
  vantage point is down, the pipeline reassigns its targets to the
  next-nearest reachable PoP, or records them as *uncovered* rather
  than silently dropping them.

Everything observable is accumulated into a :class:`ProbeHealthReport`
whose accounting is closed: every probe is answered, refused or timed
out, and every assigned target ends probed or uncovered.

With ``ResilienceConfig(enabled=False)`` (the default) the driver
degrades to the exact legacy behaviour — same queries in the same
order, no retries, no breakers, no clock manipulation — while still
tallying the health report.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.net.prefix import Prefix
from repro.dns.name import DnsName
from repro.sim.clock import Clock
from repro.sim.faults import FaultInjector
from repro.sim.streams import KeyedStream
from repro.core.prober import GoogleProber, ProbeResult, ProbeStatus


# -- policies ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with deterministic equal jitter.

    Attempt ``n`` (0-based) that fails retryably waits
    ``d = min(max_delay_s, base_delay_s * multiplier**n)`` scaled into
    ``[d/2, d)`` by the driver's event-keyed jitter draw — the classic
    "equal jitter" scheme, fully reproducible under a fixed seed and
    independent of probe ordering.

    Delays are *sim seconds* and the defaults are sized for the
    simulator's compressed probe cadence: backoff burns campaign time
    during which cache entries expire (TTLs are 300–600 s), so waits
    must stay small relative to the TTLs or the cure costs more
    coverage than the disease.  A real deployment would scale these up
    along with its probing interval.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s <= 0 or self.max_delay_s <= 0:
            raise ValueError("backoff delays must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt + 1``."""
        return self.delay_from_unit(attempt, rng.random())

    def delay_from_unit(self, attempt: int, unit: float) -> float:
        """Backoff for a jitter draw ``unit`` in ``[0, 1)``.

        Splitting the policy arithmetic from the randomness source lets
        the driver feed draws from a :class:`~repro.sim.streams
        .KeyedStream` — so a retry's delay is a pure function of *which
        probe* is retrying, not of how many other probes retried before
        it.  That order-independence is what makes retries legal under
        sharded execution.
        """
        raw = min(self.max_delay_s,
                  self.base_delay_s * self.multiplier ** attempt)
        return raw / 2.0 + unit * raw / 2.0


@dataclass(frozen=True, slots=True)
class BreakerPolicy:
    """Circuit-breaker thresholds, in sim-clock seconds."""

    failure_threshold: int = 5     # consecutive failures to open
    cooldown_s: float = 900.0      # open → half-open after this
    half_open_successes: int = 2   # successes in half-open to close

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if self.half_open_successes < 1:
            raise ValueError("half_open_successes must be at least 1")


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """The resilient driver's knobs.

    Disabled by default: the pipeline then behaves exactly as the
    happy-path legacy loop did (bit-identical outputs), while still
    producing a :class:`ProbeHealthReport`.
    """

    enabled: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: campaign-wide cap on queries the probing loop may send.
    probe_budget: int | None = None
    #: move a dead PoP's targets to the next-nearest reachable PoP.
    reassign: bool = True
    #: consecutive unavailable slots before reassignment triggers.
    reassign_after_slots: int = 2

    def __post_init__(self) -> None:
        if self.probe_budget is not None and self.probe_budget < 1:
            raise ValueError("probe_budget must be positive (or None)")
        if self.reassign_after_slots < 1:
            raise ValueError("reassign_after_slots must be at least 1")


# -- circuit breaker --------------------------------------------------------


class BreakerState(enum.Enum):
    """Circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True, slots=True)
class BreakerTransition:
    """One recorded state change of a PoP's breaker."""

    pop_id: str
    at: float
    old: BreakerState
    new: BreakerState


class CircuitBreaker:
    """A clock-driven circuit breaker for one PoP.

    CLOSED counts consecutive failures and OPENs at the threshold; OPEN
    rejects until ``cooldown_s`` elapsed, then HALF_OPENs on the next
    ``allow``; HALF_OPEN closes after the configured successes and
    re-opens (with a fresh cooldown) on any failure.
    """

    def __init__(
        self,
        policy: BreakerPolicy,
        clock: Clock,
        pop_id: str = "",
        transitions: list[BreakerTransition] | None = None,
    ) -> None:
        self._policy = policy
        self._clock = clock
        self.pop_id = pop_id
        self.state = BreakerState.CLOSED
        self.transitions = transitions if transitions is not None else []
        self._consecutive_failures = 0
        self._half_open_successes = 0
        self._opened_at = 0.0

    def _move(self, new: BreakerState) -> None:
        self.transitions.append(BreakerTransition(
            pop_id=self.pop_id, at=self._clock.now,
            old=self.state, new=new,
        ))
        self.state = new

    def allow(self) -> bool:
        """Whether a probe may be sent right now; an OPEN breaker past
        its cooldown transitions to HALF_OPEN and lets one through."""
        if self.state is BreakerState.OPEN:
            if self._clock.now >= self._opened_at + self._policy.cooldown_s:
                self._move(BreakerState.HALF_OPEN)
                self._half_open_successes = 0
                return True
            return False
        return True

    def would_allow(self) -> bool:
        """:meth:`allow` without the side effect — a health monitor can
        sample availability without nudging breakers into HALF_OPEN."""
        if self.state is BreakerState.OPEN:
            return self._clock.now >= self._opened_at + self._policy.cooldown_s
        return True

    def record_success(self) -> None:
        """Feed a successful (answered) probe outcome."""
        if self.state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self._policy.half_open_successes:
                self._move(BreakerState.CLOSED)
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Feed a failed (refused / timed-out) probe outcome."""
        if self.state is BreakerState.HALF_OPEN:
            self._move(BreakerState.OPEN)
            self._opened_at = self._clock.now
            self._consecutive_failures = 0
        elif self.state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self._policy.failure_threshold:
                self._move(BreakerState.OPEN)
                self._opened_at = self._clock.now
                self._consecutive_failures = 0


# -- health reporting -------------------------------------------------------


@dataclass(slots=True)
class PopHealth:
    """One PoP's slice of the health report."""

    sent: int = 0
    answered: int = 0
    hits: int = 0
    refused: int = 0
    timed_out: int = 0
    retries: int = 0
    skipped_slots: int = 0
    reassigned_away: int = 0
    final_breaker: str = BreakerState.CLOSED.value


@dataclass(slots=True)
class ProbeHealthReport:
    """Structured account of everything the probing loop experienced.

    Two invariants hold (see :meth:`verify`):

    * every probe is accounted for:
      ``sent == answered + refused + timed_out``;
    * every assigned target ends somewhere:
      ``targets_probed + targets_uncovered == targets_assigned``
      (reassigned targets are counted where they were finally probed —
      or as uncovered if their new PoP failed too).
    """

    resilience_enabled: bool = False
    sent: int = 0
    answered: int = 0
    hits: int = 0
    refused: int = 0
    timed_out: int = 0
    retries: int = 0
    backoff_wait_s: float = 0.0
    #: measurement-window length in *sim* seconds; probes/sec derives
    #: from it, so the rate is deterministic and survives the
    #: serial ≡ parallel differential (wall-clock rates would not).
    window_s: float = 0.0
    budget: int | None = None
    budget_exhausted: bool = False
    targets_assigned: int = 0
    targets_probed: int = 0
    targets_reassigned: int = 0
    targets_uncovered: int = 0
    breaker_transitions: list[BreakerTransition] = field(default_factory=list)
    per_pop: dict[str, PopHealth] = field(default_factory=dict)
    fault_injections: dict[str, int] = field(default_factory=dict)

    # -- derived views -----------------------------------------------------

    @property
    def probes_per_second(self) -> float:
        """Probe rate over the measurement window, in sim seconds."""
        return self.sent / self.window_s if self.window_s > 0 else 0.0

    @property
    def breaker_opens(self) -> int:
        """How many times any PoP's breaker opened."""
        return sum(1 for t in self.breaker_transitions
                   if t.new is BreakerState.OPEN)

    def error_taxonomy(self) -> dict[str, int]:
        """Probe outcomes by class."""
        return {
            "answered": self.answered,
            "refused": self.refused,
            "timed_out": self.timed_out,
        }

    def verify(self) -> None:
        """Assert the closed accounting invariants."""
        if self.sent != self.answered + self.refused + self.timed_out:
            raise AssertionError(
                f"probe accounting leak: sent={self.sent} != "
                f"answered={self.answered} + refused={self.refused} "
                f"+ timed_out={self.timed_out}"
            )
        if self.targets_probed + self.targets_uncovered != \
                self.targets_assigned:
            raise AssertionError(
                f"target accounting leak: probed={self.targets_probed} "
                f"+ uncovered={self.targets_uncovered} != "
                f"assigned={self.targets_assigned}"
            )
        for pop_id, pop in self.per_pop.items():
            if pop.sent != pop.answered + pop.refused + pop.timed_out:
                raise AssertionError(f"probe accounting leak at {pop_id}")

    def render(self) -> str:
        """The report as indented text (for experiments.report)."""
        lines = [
            f"  resilience: {'on' if self.resilience_enabled else 'off'}"
            + (f", budget {self.budget:,}"
               f"{' (exhausted)' if self.budget_exhausted else ''}"
               if self.budget is not None else ""),
            f"  probes: sent={self.sent:,} answered={self.answered:,} "
            f"(hits {self.hits:,}) refused={self.refused:,} "
            f"timed_out={self.timed_out:,}"
            + (f" rate={self.probes_per_second:,.1f}/s sim"
               if self.window_s > 0 else ""),
            f"  retries: {self.retries:,} "
            f"(backoff waited {self.backoff_wait_s:,.1f} s sim time)",
            f"  breakers: {self.breaker_opens} opens, "
            f"{len(self.breaker_transitions)} transitions",
            f"  targets: assigned={self.targets_assigned:,} "
            f"probed={self.targets_probed:,} "
            f"reassigned={self.targets_reassigned:,} "
            f"uncovered={self.targets_uncovered:,}",
        ]
        retried = [(pop_id, pop.retries)
                   for pop_id, pop in sorted(self.per_pop.items())
                   if pop.retries]
        if retried:
            lines.append("  retries by PoP: " + ", ".join(
                f"{pop_id}={count:,}" for pop_id, count in retried))
        injected = {k: v for k, v in self.fault_injections.items() if v}
        if injected:
            lines.append("  faults injected: " + ", ".join(
                f"{name}={count:,}" for name, count in sorted(injected.items())
            ))
        degraded = [
            (pop_id, pop) for pop_id, pop in sorted(self.per_pop.items())
            if pop.skipped_slots or pop.reassigned_away
            or pop.final_breaker != BreakerState.CLOSED.value
        ]
        for pop_id, pop in degraded:
            lines.append(
                f"    {pop_id}: breaker={pop.final_breaker} "
                f"skipped_slots={pop.skipped_slots} "
                f"reassigned_away={pop.reassigned_away}"
            )
        return "\n".join(lines)


# -- the driver -------------------------------------------------------------


class ResilientProber:
    """Wraps a :class:`GoogleProber` with retries, breakers and budget.

    All stochastic choices (jitter) come from a dedicated event-keyed
    stream; all waiting advances the shared sim clock, so resilience
    costs simulated campaign time the way it costs real time.
    """

    def __init__(
        self,
        prober: GoogleProber,
        clock: Clock,
        config: ResilienceConfig | None = None,
        seed: int = 0,
        faults: FaultInjector | None = None,
    ) -> None:
        self.prober = prober
        self.config = config or ResilienceConfig()
        self._clock = clock
        self._faults = faults
        # Jitter draws are event-keyed, not sequential: the delay of a
        # retry depends only on (seed, instant, which probe, which
        # retry), never on how many other probes drew jitter earlier.
        # That makes retry schedules identical between a serial run and
        # any sharded run that replays the same clock trajectory.
        self._jitter = KeyedStream(seed, "resilient-jitter", clock)
        self._breakers: dict[str, CircuitBreaker] = {}
        self.report = ProbeHealthReport(
            resilience_enabled=self.config.enabled,
            budget=self.config.probe_budget,
        )
        self._budget_left = self.config.probe_budget
        # Telemetry counters, pre-bound so the hot path pays one
        # attribute load + integer add per event; all None when the
        # ambient bundle is disabled (the default), making every hook
        # a cheap falsy check.  Counting never touches the clock, the
        # jitter stream, the budget or the breakers — inert by
        # construction.
        from repro.obs import runtime as _obs_runtime

        telemetry = _obs_runtime.current()
        self._telemetry = telemetry if telemetry.enabled else None
        if self._telemetry is not None:
            registry = telemetry.registry
            self._m_sent = registry.counter("probe.sent")
            self._m_status = {
                status: registry.counter("probe.outcomes",
                                         {"status": status.name.lower()})
                for status in ProbeStatus
            }
            self._m_retries = registry.counter("probe.retries")
            self._m_budget_denied = registry.counter("budget.denied")
            self._m_backoff = registry.histogram(
                "probe.backoff_s", (0.1, 0.25, 0.5, 1.0, 2.5, 5.0))
        else:
            self._m_sent = None

    # -- availability ------------------------------------------------------

    def breaker(self, pop_id: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one PoP."""
        breaker = self._breakers.get(pop_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config.breaker, self._clock, pop_id=pop_id,
                transitions=self.report.breaker_transitions,
            )
            self._breakers[pop_id] = breaker
        return breaker

    def vantage_down(self, pop_id: str) -> bool:
        """Whether the vantage point reaching this PoP is in an outage."""
        if self._faults is None or not self._faults.enabled:
            return False
        vantage = self.prober.vantage_for(pop_id)
        key = f"{vantage.region.provider}:{vantage.region.region}"
        return self._faults.vantage_down(key)

    def pop_available(self, pop_id: str) -> bool:
        """Whether probing this PoP is currently possible and allowed."""
        if self.vantage_down(pop_id):
            return False
        if not self.config.enabled:
            return True
        return self.breaker(pop_id).allow()

    def pop_ready(self, pop_id: str) -> bool:
        """Side-effect-free availability check for health sampling.

        Unlike :meth:`pop_available` this never transitions a breaker
        to HALF_OPEN and also consults PoP outage windows, so a
        long-horizon supervisor can compute its availability rollup
        without perturbing probe behaviour.
        """
        if self.vantage_down(pop_id):
            return False
        if self._faults is not None and self._faults.enabled \
                and self._faults.pop_down(pop_id):
            return False
        if not self.config.enabled:
            return True
        breaker = self._breakers.get(pop_id)
        return breaker is None or breaker.would_allow()

    def breaker_states(self) -> dict[str, str]:
        """Current breaker state per PoP — the rollup the service
        health machine folds into its window verdicts."""
        return {pop_id: breaker.state.value
                for pop_id, breaker in sorted(self._breakers.items())}

    @property
    def budget_exhausted(self) -> bool:
        """Whether the campaign budget has been spent."""
        return self._budget_left is not None and self._budget_left <= 0

    # -- probing -----------------------------------------------------------

    def probe(
        self, pop_id: str, domain: DnsName, scope: Prefix
    ) -> ProbeResult | None:
        """The redundant batch for one target, with per-query retries.

        Returns None when nothing could be sent (budget exhausted or
        the vantage died mid-slot) so the caller can keep the target
        accounted as unprobed.
        """
        if self.budget_exhausted or self.vantage_down(pop_id):
            return None
        hit = False
        response_scope: int | None = None
        refused = 0
        timed_out = 0
        sent = 0
        for index in range(self.prober.redundancy):
            if self.config.enabled and not self.breaker(pop_id).allow():
                # The breaker opened earlier in this batch; stop.
                break
            attempt = self._attempt(pop_id, domain, scope, index)
            if attempt is None:
                break
            status, scope_length = attempt
            sent += 1
            if status is ProbeStatus.REFUSED:
                refused += 1
            elif status is ProbeStatus.TIMEOUT:
                timed_out += 1
            elif status is ProbeStatus.HIT and not hit:
                hit = True
                response_scope = scope_length
        if sent == 0:
            return None
        return ProbeResult(
            pop_id=pop_id,
            domain=str(domain),
            query_scope=scope,
            hit=hit,
            response_scope=response_scope,
            queries_sent=sent,
            refused=refused,
            timed_out=timed_out,
        )

    def _attempt(
        self, pop_id: str, domain: DnsName, scope: Prefix, index: int = 0
    ) -> tuple[ProbeStatus, int | None] | None:
        """One redundancy slot: a query plus its retry chain.

        Returns the final status, or None when the budget ran out
        before anything was sent.
        """
        config = self.config
        retries_done = 0
        while True:
            if self._budget_left is not None:
                if self._budget_left <= 0:
                    self.report.budget_exhausted = True
                    if self._m_sent is not None:
                        self._m_budget_denied.inc()
                    return None
                self._budget_left -= 1
            status, scope_length = self.prober.probe_once(
                pop_id, domain, scope)
            self._record(pop_id, status)
            if not config.enabled:
                return status, scope_length
            breaker = self.breaker(pop_id)
            if status.answered:
                breaker.record_success()
                return status, scope_length
            breaker.record_failure()
            if retries_done + 1 >= config.retry.max_attempts:
                return status, scope_length
            if not breaker.allow():
                # The breaker opened under this failure streak; stop
                # retrying — the slot-level skip logic takes over.
                return status, scope_length
            unit = self._jitter.uniform(
                pop_id, str(domain), str(scope), index, retries_done)
            delay = config.retry.delay_from_unit(retries_done, unit)
            self._clock.advance(delay)
            retries_done += 1
            self.report.retries += 1
            self.report.backoff_wait_s += delay
            pop = self._pop_health(pop_id)
            pop.retries += 1
            if self._m_sent is not None:
                self._m_retries.inc()
                self._m_backoff.observe(delay)
                if self._telemetry.trace_config.retry_spans:
                    self._telemetry.span(
                        "retry", f"{pop_id}/{domain}/{scope}#{retries_done}",
                        self._clock.now - delay, self._clock.now)

    # -- foreign-shard replay ----------------------------------------------

    def apply_foreign_breaker(self, pop_id: str, event: str) -> None:
        """Replay one breaker side effect of a probe another shard owns.

        A sharded worker skips foreign probe visits, but those visits
        would have driven the shared per-PoP breakers: ``allow`` can
        flip OPEN→HALF_OPEN, ``ok``/``fail`` feed the outcome counters.
        The synchronization summary records the exact event sequence so
        every shard's breakers traverse the identical state machine.
        """
        breaker = self.breaker(pop_id)
        if event == "allow":
            breaker.allow()
        elif event == "ok":
            breaker.record_success()
        elif event == "fail":
            breaker.record_failure()
        else:
            raise ValueError(f"unknown breaker event {event!r}")

    def consume_foreign_budget(self, queries: int) -> None:
        """Deduct queries another shard spent from the shared budget.

        Only the balance moves — the owning shard already accounted the
        sends in *its* health report, and the merge sums those.
        """
        if self._budget_left is not None:
            self._budget_left -= queries

    # -- bookkeeping -------------------------------------------------------

    def _pop_health(self, pop_id: str) -> PopHealth:
        pop = self.report.per_pop.get(pop_id)
        if pop is None:
            pop = PopHealth()
            self.report.per_pop[pop_id] = pop
        return pop

    def _record(self, pop_id: str, status: ProbeStatus) -> None:
        report = self.report
        pop = self._pop_health(pop_id)
        report.sent += 1
        pop.sent += 1
        if self._m_sent is not None:
            self._m_sent.inc()
            self._m_status[status].inc()
        if status is ProbeStatus.REFUSED:
            report.refused += 1
            pop.refused += 1
        elif status is ProbeStatus.TIMEOUT:
            report.timed_out += 1
            pop.timed_out += 1
        else:
            report.answered += 1
            pop.answered += 1
            if status is ProbeStatus.HIT:
                report.hits += 1
                pop.hits += 1

    def note_skipped_slot(self, pop_id: str) -> None:
        """Record that a whole slot was skipped for an unavailable PoP."""
        self._pop_health(pop_id).skipped_slots += 1

    def note_reassignment(self, pop_id: str, moved: int) -> None:
        """Record that ``moved`` targets left a degraded PoP."""
        self.report.targets_reassigned += moved
        self._pop_health(pop_id).reassigned_away += moved

    def finalize(
        self,
        targets_assigned: int,
        targets_probed: int,
        window_s: float = 0.0,
    ) -> ProbeHealthReport:
        """Seal the report with target accounting and breaker states.

        ``window_s`` is the measurement window length in sim seconds;
        it feeds the report's deterministic probes/sec rate.
        """
        report = self.report
        report.targets_assigned = targets_assigned
        report.targets_probed = targets_probed
        report.targets_uncovered = targets_assigned - targets_probed
        report.budget_exhausted = self.budget_exhausted
        report.window_s = window_s
        for pop_id, breaker in self._breakers.items():
            self._pop_health(pop_id).final_breaker = breaker.state.value
        if self._faults is not None:
            report.fault_injections = self._faults.stats.as_dict()
        self.harvest_telemetry()
        return report

    def harvest_telemetry(self) -> None:
        """Mirror breaker-transition tallies into the metrics registry.

        Transitions accumulate in the report (they are campaign data);
        the registry mirror uses *gauges*, not counters, for two
        reasons: re-harvesting at every window boundary must stay
        idempotent, and every shard replica traverses the identical
        breaker state machine — gauges merge by max, which dedups the
        replicated tallies instead of summing them N-fold.
        """
        if self._telemetry is None:
            return
        registry = self._telemetry.registry
        tallies: dict[str, int] = {}
        for transition in self.report.breaker_transitions:
            tallies[transition.new.value] = \
                tallies.get(transition.new.value, 0) + 1
        for state, count in tallies.items():
            registry.gauge("breaker.transitions",
                           {"to": state}).set(count, self._clock.now)
