"""Per-country coverage of APNIC's Internet population (Figure 3).

For each country: what fraction of its Internet users (as estimated by
APNIC, per AS) sit in ASes where cache probing detected client
activity?  The paper finds ≈100% in most large countries with the
notable gap concentrated in South America, where its vantage points
could not reach the local PoPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.builder import World


@dataclass(frozen=True, slots=True)
class CountryCoverage:
    """One Figure 3 point."""

    country: str
    region: str
    apnic_users: float
    covered_users: float

    @property
    def fraction(self) -> float:
        """Covered share of the country's APNIC-estimated users."""
        if self.apnic_users == 0:
            return 0.0
        return min(1.0, self.covered_users / self.apnic_users)


def country_coverage(
    world: World,
    apnic_estimates: dict[int, float],
    detected_asns: set[int],
) -> list[CountryCoverage]:
    """Figure 3's points, sorted by APNIC population descending."""
    per_country_total: dict[str, float] = {}
    per_country_covered: dict[str, float] = {}
    for asn, users in apnic_estimates.items():
        record = world.registry.get(asn)
        if record is None:
            continue
        per_country_total[record.country] = (
            per_country_total.get(record.country, 0.0) + users
        )
        if asn in detected_asns:
            per_country_covered[record.country] = (
                per_country_covered.get(record.country, 0.0) + users
            )
    regions = {c.code: c.region for c in world.countries}
    rows = [
        CountryCoverage(
            country=code,
            region=regions.get(code, "??"),
            apnic_users=total,
            covered_users=per_country_covered.get(code, 0.0),
        )
        for code, total in per_country_total.items()
    ]
    rows.sort(key=lambda r: -r.apnic_users)
    return rows


def mean_fraction_by_region(
    rows: list[CountryCoverage],
) -> dict[str, float]:
    """Average coverage per region — the South America gap shows here."""
    sums: dict[str, list[float]] = {}
    for row in rows:
        sums.setdefault(row.region, []).append(row.fraction)
    return {region: sum(v) / len(v) for region, v in sums.items()}
