"""Vantage-point coverage analysis (§3.1.1, §A.1).

The paper "tested all AWS regions and reached 16 PoPs, plus 6 more
from Vultr".  This module reconstructs that accounting from a
deployment: which regions collapse onto the same PoP, what each
provider contributes, and which active PoPs stay unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.builder import World
from repro.world.vantage import VantagePoint


@dataclass(frozen=True, slots=True)
class ProviderContribution:
    """One cloud provider's share of PoP coverage."""

    provider: str
    regions: int
    pops_reached: tuple[str, ...]
    pops_added: tuple[str, ...]  # beyond what earlier providers reached


@dataclass(slots=True)
class VantageCoverage:
    """The §A.1 coverage accounting."""

    contributions: list[ProviderContribution]
    unreached_active: tuple[str, ...]
    region_to_pop: dict[str, str]

    def total_pops_reached(self) -> int:
        """Distinct PoPs reached by any provider."""
        reached: set[str] = set()
        for contribution in self.contributions:
            reached.update(contribution.pops_reached)
        return len(reached)

    def render(self) -> str:
        """Fixed-width text rendering."""
        lines = ["Vantage coverage"]
        for c in self.contributions:
            lines.append(
                f"  {c.provider}: {c.regions} regions → "
                f"{len(c.pops_reached)} PoPs "
                f"(+{len(c.pops_added)} new: {', '.join(c.pops_added)})"
            )
        lines.append(
            f"  total: {self.total_pops_reached()} PoPs; active but "
            f"unreached: {', '.join(self.unreached_active) or 'none'}"
        )
        return "\n".join(lines)


def vantage_coverage(
    world: World, vantage_points: list[VantagePoint]
) -> VantageCoverage:
    """Account for each provider's contribution, in deployment order
    (mirroring the paper's AWS-first-then-Vultr narrative)."""
    providers: list[str] = []
    by_provider: dict[str, list[VantagePoint]] = {}
    for vp in vantage_points:
        provider = vp.region.provider
        if provider not in by_provider:
            providers.append(provider)
            by_provider[provider] = []
        by_provider[provider].append(vp)
    contributions = []
    reached_so_far: set[str] = set()
    for provider in providers:
        vps = by_provider[provider]
        reached = sorted({vp.reached_pop for vp in vps})
        added = sorted(set(reached) - reached_so_far)
        reached_so_far.update(reached)
        contributions.append(ProviderContribution(
            provider=provider,
            regions=len(vps),
            pops_reached=tuple(reached),
            pops_added=tuple(added),
        ))
    active = {d.pop_id for d in world.pop_descriptors if d.active}
    unreached = tuple(sorted(active - reached_so_far))
    region_to_pop = {
        f"{vp.region.provider}/{vp.region.region}": vp.reached_pop
        for vp in vantage_points
    }
    return VantageCoverage(
        contributions=contributions,
        unreached_active=unreached,
        region_to_pop=region_to_pop,
    )
