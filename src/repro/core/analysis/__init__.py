"""Analyses reproducing the paper's tables and figures."""

from repro.core.analysis import (
    asdb_breakdown,
    bounds,
    country,
    distance,
    domains,
    geomap,
    overlap,
    pops,
    relative,
    scopes,
    temporal,
    vantage_coverage,
    volume,
)

__all__ = [
    "asdb_breakdown", "bounds", "country", "distance", "domains", "geomap",
    "overlap", "pops", "relative", "scopes", "temporal", "vantage_coverage", "volume",
]
