"""Per-AS active-prefix fraction bounds (Figure 4).

A cache hit whose scope is coarser than /24 proves *at least one* /24
inside it is active, but not which.  Per AS the paper therefore reports
a lower bound (one /24 per non-overlapping hit prefix) and an upper
bound (every covered /24), divided by the /24s the AS announces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.prefixset import PrefixSet
from repro.net.routing import RouteTable
from repro.core.cache_probing import CacheProbingResult


@dataclass(frozen=True, slots=True)
class AsActivityBounds:
    """One AS's detected-activity bounds."""

    asn: int
    announced_slash24s: int
    lower_active: int
    upper_active: int

    @property
    def lower_fraction(self) -> float:
        """Lower-bound active fraction of announced /24s."""
        if self.announced_slash24s == 0:
            return 0.0
        return min(1.0, self.lower_active / self.announced_slash24s)

    @property
    def upper_fraction(self) -> float:
        """Upper-bound active fraction of announced /24s."""
        if self.announced_slash24s == 0:
            return 0.0
        return min(1.0, self.upper_active / self.announced_slash24s)


def per_as_bounds(
    result: CacheProbingResult,
    routes: RouteTable,
    include_inactive: bool = False,
) -> list[AsActivityBounds]:
    """Figure 4's data: bounds for every AS with detected activity.

    ``include_inactive`` adds announced ASes with no detected activity
    as zero rows.
    """
    per_as_sets: dict[int, PrefixSet] = {}
    for prefix in result.active_prefix_set():
        origins = set()
        origin = routes.origin_of_prefix(prefix)
        if origin is not None:
            origins.add((origin, prefix))
        else:
            # Coarse prefixes spanning announcements: attribute each
            # covered /24 to its own origin.
            for sub in prefix.slash24s():
                sub_origin = routes.origin_of_prefix(sub)
                if sub_origin is not None:
                    origins.add((sub_origin, sub))
        for asn, attributed in origins:
            per_as_sets.setdefault(asn, PrefixSet()).add(attributed)
    rows = []
    seen_asns = set(per_as_sets)
    for asn, prefixes in per_as_sets.items():
        announced = routes.announced_slash24_count(asn)
        rows.append(AsActivityBounds(
            asn=asn,
            announced_slash24s=announced,
            lower_active=prefixes.slash24_lower_bound(),
            upper_active=prefixes.slash24_upper_bound(),
        ))
    if include_inactive:
        for prefix, asn in routes.routed_prefixes():
            if asn not in seen_asns:
                seen_asns.add(asn)
                rows.append(AsActivityBounds(
                    asn=asn,
                    announced_slash24s=routes.announced_slash24_count(asn),
                    lower_active=0,
                    upper_active=0,
                ))
    rows.sort(key=lambda r: r.asn)
    return rows


def fraction_cdf(values: list[float]) -> list[tuple[float, float]]:
    """(x, cumulative fraction ≤ x) steps for a CDF plot."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def median_bounds(rows: list[AsActivityBounds]) -> tuple[float, float]:
    """The median per-AS active fraction under each bound — the paper
    reports it could be anywhere between 25% and 100%."""
    if not rows:
        raise ValueError("no ASes with detected activity")
    lowers = sorted(r.lower_fraction for r in rows)
    uppers = sorted(r.upper_fraction for r in rows)
    mid = len(rows) // 2
    return lowers[mid], uppers[mid]
