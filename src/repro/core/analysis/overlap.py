"""Pairwise dataset overlap (Tables 1 and 3).

Each entry of the matrix is |row ∩ column| with, in parentheses, that
intersection as a percentage of the row dataset — exactly the layout of
the paper's tables.  Table 1 compares /24 sets; Table 3 compares AS
sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datasets import ActivityDataset


@dataclass(slots=True)
class OverlapMatrix:
    """|row ∩ col| for every ordered dataset pair."""

    names: list[str]
    sizes: dict[str, int]
    intersections: dict[tuple[str, str], int]
    unit: str  # "/24 prefixes" or "ASes"

    def size(self, name: str) -> int:
        """Size of the named dataset (the matrix diagonal)."""
        return self.sizes[name]

    def intersection(self, row: str, col: str) -> int:
        """|row ∩ col| for the named dataset pair."""
        return self.intersections[(row, col)]

    def row_percentage(self, row: str, col: str) -> float:
        """Percent of the row dataset also observed in the column."""
        size = self.sizes[row]
        if size == 0:
            return 0.0
        return 100.0 * self.intersections[(row, col)] / size

    def render(self) -> str:
        """ASCII rendering in the paper's layout."""
        width = max(len(n) for n in self.names) + 2
        cell = 22
        header = " " * width + "".join(n[:cell - 2].rjust(cell)
                                       for n in self.names)
        lines = [f"Overlap by {self.unit}", header]
        for row in self.names:
            cells = []
            for col in self.names:
                count = self.intersections[(row, col)]
                pct = self.row_percentage(row, col)
                cells.append(f"{count} ({pct:.1f}%)".rjust(cell))
            lines.append(row.ljust(width) + "".join(cells))
        return "\n".join(lines)


def _matrix(
    sets: dict[str, set], names: list[str], unit: str
) -> OverlapMatrix:
    sizes = {name: len(sets[name]) for name in names}
    intersections = {
        (row, col): len(sets[row] & sets[col])
        for row in names for col in names
    }
    return OverlapMatrix(names=list(names), sizes=sizes,
                         intersections=intersections, unit=unit)


def prefix_overlap_matrix(
    datasets: dict[str, ActivityDataset], names: list[str]
) -> OverlapMatrix:
    """Table 1: /24-prefix overlap (APNIC has no prefixes, so the
    paper's Table 1 omits it)."""
    sets = {name: datasets[name].slash24_ids for name in names}
    return _matrix(sets, names, "/24 prefixes")


def as_overlap_matrix(
    datasets: dict[str, ActivityDataset], names: list[str]
) -> OverlapMatrix:
    """Table 3: AS overlap across all six datasets."""
    sets = {name: datasets[name].asns for name in names}
    return _matrix(sets, names, "ASes")


def union_as_count(datasets: dict[str, ActivityDataset],
                   names: list[str]) -> int:
    """Total ASes in at least one dataset (§4: 66,804 in the paper)."""
    union: set[int] = set()
    for name in names:
        union |= datasets[name].asns
    return len(union)
