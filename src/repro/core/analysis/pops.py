"""PoP coverage analysis (Figure 5, §A.1).

The deployment splits three ways: PoPs the cloud vantage points reach
(*probed and verified*), PoPs never reached from any cloud but visibly
serving clients — their egress resolvers appear in the Microsoft
resolver logs (*unprobed and verified*), and the rest (*unprobed and
unverified*, presumed inactive).  §A.1 adds the punchline: the probed
PoPs carry ~95% of the public resolver's query volume towards
Microsoft, the unprobed-verified only ~5%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.builder import World


@dataclass(frozen=True, slots=True)
class PopCoverage:
    """Figure 5's categories plus §A.1's volume shares."""

    probed_verified: tuple[str, ...]
    unprobed_verified: tuple[str, ...]
    unprobed_unverified: tuple[str, ...]
    probed_volume_share: float      # of Google→Microsoft query volume
    unprobed_verified_volume_share: float

    def counts(self) -> tuple[int, int, int]:
        """(probed, unprobed-verified, unprobed-unverified) counts."""
        return (len(self.probed_verified), len(self.unprobed_verified),
                len(self.unprobed_unverified))


def pop_coverage(world: World, probed_pop_ids: set[str]) -> PopCoverage:
    """Classify every PoP of the deployment.

    Verification uses the Microsoft resolver dataset exactly as §A.1
    does: a PoP is *verified* if its egress address shows up as a
    recursive resolver in the CDN's logs.
    """
    resolver_volumes = world.cdn.microsoft_resolvers()
    probed: list[str] = []
    unprobed_verified: list[str] = []
    unprobed_unverified: list[str] = []
    probed_volume = 0
    unprobed_volume = 0
    for descriptor in world.pop_descriptors:
        pop_id = descriptor.pop_id
        egress = world.public_dns.site(pop_id).egress_ip
        volume = resolver_volumes.get(egress, 0)
        if pop_id in probed_pop_ids:
            probed.append(pop_id)
            probed_volume += volume
        elif volume > 0:
            unprobed_verified.append(pop_id)
            unprobed_volume += volume
        else:
            unprobed_unverified.append(pop_id)
    total = probed_volume + unprobed_volume
    return PopCoverage(
        probed_verified=tuple(sorted(probed)),
        unprobed_verified=tuple(sorted(unprobed_verified)),
        unprobed_unverified=tuple(sorted(unprobed_unverified)),
        probed_volume_share=(probed_volume / total if total else 0.0),
        unprobed_verified_volume_share=(
            unprobed_volume / total if total else 0.0
        ),
    )


def render(coverage: PopCoverage) -> str:
    """Fixed-width text rendering."""
    p, uv, uu = coverage.counts()
    return "\n".join([
        "PoP coverage",
        f"  probed and verified ({p}): {', '.join(coverage.probed_verified)}",
        f"  unprobed and verified ({uv}): "
        f"{', '.join(coverage.unprobed_verified)}",
        f"  unprobed and unverified ({uu}): "
        f"{', '.join(coverage.unprobed_unverified)}",
        f"  query volume share: probed {coverage.probed_volume_share:.1%}, "
        f"unprobed-verified {coverage.unprobed_verified_volume_share:.1%}",
    ])
