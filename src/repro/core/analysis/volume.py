"""Volume-weighted overlap (Table 4) and §4's headline statistics.

Table 4 answers "the ASes we miss are generally small": each cell is
the percent of the *row* dataset's activity volume that comes from ASes
also present in the *column* dataset.  Only sources with a volume
measure get a row (cache probing and the union column do not measure
volume, but appear as columns).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.prefix import Prefix
from repro.core.cache_probing import CacheProbingResult
from repro.core.datasets import (
    ActivityDataset,
    CACHE_PROBING,
    CLOUD_ECS,
    DNS_LOGS,
    MICROSOFT_CLIENTS,
    MICROSOFT_RESOLVERS,
    UNION,
)


@dataclass(slots=True)
class VolumeOverlapMatrix:
    """Percent of row volume covered by column ASes."""

    row_names: list[str]
    col_names: list[str]
    shares: dict[tuple[str, str], float]  # percentages

    def share(self, row: str, col: str) -> float:
        """Percent of the row dataset's volume in the column's ASes."""
        return self.shares[(row, col)]

    def render(self) -> str:
        """Fixed-width text rendering."""
        width = max(len(n) for n in self.row_names) + 2
        cell = 22
        header = " " * width + "".join(n[:cell - 2].rjust(cell)
                                       for n in self.col_names)
        lines = ["Volume share by AS overlap", header]
        for row in self.row_names:
            cells = [f"{self.shares[(row, col)]:.1f}%".rjust(cell)
                     for col in self.col_names]
            lines.append(row.ljust(width) + "".join(cells))
        return "\n".join(lines)


def volume_overlap_matrix(
    datasets: dict[str, ActivityDataset],
    col_names: list[str],
) -> VolumeOverlapMatrix:
    """Table 4: rows are the volume-bearing datasets."""
    row_names = [n for n in col_names if datasets[n].has_volume]
    shares: dict[tuple[str, str], float] = {}
    for row in row_names:
        for col in col_names:
            shares[(row, col)] = 100.0 * datasets[row].volume_share_of_asns(
                datasets[col].asns
            )
    return VolumeOverlapMatrix(row_names=row_names, col_names=list(col_names),
                               shares=shares)


@dataclass(slots=True)
class HeadlineStats:
    """The abstract's and §4's headline validation numbers.

    Paper values for reference: AS-level volume coverage 98.8% (APNIC
    92%); /24 volume coverage 95.2%; DNS-logs prefix precision 95.5%;
    cache-probing upper-bound precision 74.7%; recovery of ground-truth
    ECS prefixes 91%; ECS↔HTTP cross coverage 97.2%/92%; scope-prefix
    false positives <1% (99.1% contain a client /24).
    """

    union_as_volume_share: float
    apnic_as_volume_share: float
    union_prefix_volume_share: float
    dns_logs_prefix_precision: float
    cache_probing_prefix_precision: float
    cache_recall_of_cloud_ecs: float
    ecs_covers_http_share: float
    http_covers_ecs_share: float
    scope_prefix_precision: float


def compute_headline_stats(
    datasets: dict[str, ActivityDataset],
    cache_result: CacheProbingResult,
) -> HeadlineStats:
    """Compute every headline number from the assembled datasets."""
    clients = datasets[MICROSOFT_CLIENTS]
    union = datasets[UNION]
    cache = datasets[CACHE_PROBING]
    logs = datasets[DNS_LOGS]
    apnic = datasets["APNIC"]
    ecs = datasets[CLOUD_ECS]

    union_as_share = clients.volume_share_of_asns(union.asns)
    apnic_as_share = clients.volume_share_of_asns(apnic.asns)
    union_prefix_share = clients.slash24_volume_share(union.slash24_ids)
    logs_precision = (
        len(logs.slash24_ids & clients.slash24_ids) / len(logs.slash24_ids)
        if logs.slash24_ids else 0.0
    )
    cache_precision = (
        len(cache.slash24_ids & clients.slash24_ids) / len(cache.slash24_ids)
        if cache.slash24_ids else 0.0
    )
    recall = (
        len(cache.slash24_ids & ecs.slash24_ids) / len(ecs.slash24_ids)
        if ecs.slash24_ids else 0.0
    )
    # "DNS activity is a good proxy": prefixes in the ECS logs are
    # responsible for X% of HTTP volume, and HTTP prefixes for Y% of
    # DNS query volume.
    ecs_covers_http = clients.slash24_volume_share(ecs.slash24_ids)
    http_covers_ecs = ecs.slash24_volume_share(clients.slash24_ids)
    return HeadlineStats(
        union_as_volume_share=100.0 * union_as_share,
        apnic_as_volume_share=100.0 * apnic_as_share,
        union_prefix_volume_share=100.0 * union_prefix_share,
        dns_logs_prefix_precision=100.0 * logs_precision,
        cache_probing_prefix_precision=100.0 * cache_precision,
        cache_recall_of_cloud_ecs=100.0 * recall,
        ecs_covers_http_share=100.0 * ecs_covers_http,
        http_covers_ecs_share=100.0 * http_covers_ecs,
        scope_prefix_precision=100.0 * scope_prefix_precision(
            cache_result, clients.slash24_ids
        ),
    )


def scope_prefix_precision(
    cache_result: CacheProbingResult, client_slash24_ids: set[int]
) -> float:
    """Fraction of returned scope prefixes containing ≥ 1 client /24
    (paper: 99.1%, i.e. <1% false positives)."""
    prefixes = list(cache_result.active_prefix_set())
    if not prefixes:
        return 0.0
    good = sum(
        1 for prefix in prefixes
        if _contains_any(prefix, client_slash24_ids)
    )
    return good / len(prefixes)


def _contains_any(prefix: Prefix, ids: set[int]) -> bool:
    if prefix.length >= 24:
        return (prefix.network >> 8) in ids
    start = prefix.network >> 8
    return any(block in ids for block in
               range(start, start + prefix.num_slash24s()))
