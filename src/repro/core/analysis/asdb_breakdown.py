"""ASdb breakdown of the ASes APNIC misses (§4).

The paper characterises the 29,973 ASes its techniques detect as
hosting web clients but that APNIC does not consider as hosting
customers: ASdb categorises 92.7% of them; 39.5% are ISPs, 17.4%
hosting/cloud (plausibly non-human clients), 6.2% schools (plausibly
human users).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.asn import ASCategory
from repro.world.asdb import CATEGORY_LABELS, AsdbSnapshot
from repro.world.builder import World
from repro.core.datasets import ActivityDataset


@dataclass(slots=True)
class MissedAsBreakdown:
    """Categorisation of the ASes our techniques see but APNIC misses."""

    missed_total: int
    categorised: int
    label_counts: dict[str, int]

    @property
    def coverage(self) -> float:
        """Share of missed ASes that ASdb categorised."""
        if self.missed_total == 0:
            return 0.0
        return self.categorised / self.missed_total

    def share(self, label: str) -> float:
        """Fraction of *categorised* ASes with ``label`` (the paper
        reports shares of the categorised set)."""
        if self.categorised == 0:
            return 0.0
        return self.label_counts.get(label, 0) / self.categorised

    def render(self) -> str:
        """Fixed-width text rendering."""
        lines = [
            f"ASes detected by our techniques but absent from APNIC: "
            f"{self.missed_total}",
            f"  categorised by ASdb: {self.categorised} "
            f"({self.coverage:.1%})",
        ]
        for label, count in sorted(self.label_counts.items(),
                                   key=lambda kv: -kv[1]):
            lines.append(f"  {label}: {count} ({self.share(label):.1%})")
        return "\n".join(lines)


def missed_as_breakdown(
    world: World,
    union: ActivityDataset,
    apnic: ActivityDataset,
    asdb: AsdbSnapshot | None = None,
) -> MissedAsBreakdown:
    """§4's breakdown: who are the ASes APNIC can't see?"""
    if asdb is None:
        asdb = AsdbSnapshot(world)
    missed = union.asns - apnic.asns
    labels = asdb.breakdown(missed)
    return MissedAsBreakdown(
        missed_total=len(missed),
        categorised=sum(labels.values()),
        label_counts=labels,
    )


ISP_LABEL = CATEGORY_LABELS[ASCategory.ISP]
HOSTING_LABEL = CATEGORY_LABELS[ASCategory.HOSTING]
EDUCATION_LABEL = CATEGORY_LABELS[ASCategory.EDUCATION]
