"""Per-domain cache-probing results (Table 5, §B.4).

For each probe domain: the prefixes/ASes with cache hits, the ones
unique to that domain, and pairwise overlap.  Because different domains
answer with different scopes, two prefixes "match" when one contains
the other — the paper's containment convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.prefixset import PrefixSet
from repro.net.routing import RouteTable
from repro.core.cache_probing import CacheProbingResult


@dataclass(slots=True)
class DomainStats:
    """Top half of Table 5 for one domain."""

    domain: str
    total_prefixes: int
    unique_prefixes: int
    total_asns: int
    unique_asns: int


@dataclass(slots=True)
class PerDomainAnalysis:
    """Full Table 5: per-domain stats plus the pairwise matrix."""

    stats: list[DomainStats]
    overlap: dict[tuple[str, str], int]   # |{p in row matching col}|
    prefix_counts: dict[str, int]

    def overlap_percentage(self, row: str, col: str) -> float:
        """Percent of the row domain's prefixes matched in the column domain."""
        total = self.prefix_counts[row]
        if total == 0:
            return 0.0
        return 100.0 * self.overlap[(row, col)] / total

    def render(self) -> str:
        """Fixed-width text rendering."""
        lines = ["Per-domain cache probing results"]
        header = f"{'domain':28}{'prefixes':>10}{'unique':>9}{'ASes':>8}{'uniqASes':>10}"
        lines.append(header)
        for s in self.stats:
            lines.append(
                f"{s.domain:28}{s.total_prefixes:>10}{s.unique_prefixes:>9}"
                f"{s.total_asns:>8}{s.unique_asns:>10}"
            )
        lines.append("")
        names = [s.domain for s in self.stats]
        lines.append("pairwise prefix overlap (% of row found in column):")
        for row in names:
            cells = " ".join(
                f"{self.overlap_percentage(row, col):5.1f}%" for col in names
            )
            lines.append(f"{row:28}{cells}")
        return "\n".join(lines)


def per_domain_analysis(
    result: CacheProbingResult, routes: RouteTable
) -> PerDomainAnalysis:
    """Build Table 5 from a cache-probing run."""
    domains = result.domains()
    prefix_sets = {d: result.active_prefix_set(d) for d in domains}
    as_sets = {d: result.active_asns(routes, d) for d in domains}
    stats: list[DomainStats] = []
    overlap: dict[tuple[str, str], int] = {}
    prefix_counts = {d: len(prefix_sets[d]) for d in domains}
    for row in domains:
        row_prefixes = list(prefix_sets[row])
        for col in domains:
            if col == row:
                overlap[(row, col)] = len(row_prefixes)
                continue
            col_set = prefix_sets[col]
            overlap[(row, col)] = sum(
                1 for p in row_prefixes if col_set.intersects(p)
            )
        others_prefixes = [prefix_sets[d] for d in domains if d != row]
        unique_prefixes = sum(
            1 for p in row_prefixes
            if not any(o.intersects(p) for o in others_prefixes)
        )
        others_asns: set[int] = set()
        for d in domains:
            if d != row:
                others_asns |= as_sets[d]
        unique_asns = len(as_sets[row] - others_asns)
        stats.append(DomainStats(
            domain=row,
            total_prefixes=len(row_prefixes),
            unique_prefixes=unique_prefixes,
            total_asns=len(as_sets[row]),
            unique_asns=unique_asns,
        ))
    return PerDomainAnalysis(stats=stats, overlap=overlap,
                             prefix_counts=prefix_counts)


def union_prefix_set(result: CacheProbingResult) -> PrefixSet:
    """All active prefixes across domains."""
    return result.active_prefix_set()
