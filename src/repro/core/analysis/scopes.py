"""Query-vs-response scope stability (Table 2, §A.2).

The scope-reduction technique assumes the scopes learned from the
authoritative stay stable while Google's caches are probed with them.
Table 2 measures it: per domain, how many cache hits had a response
scope equal to the query scope, within 2 bits, within 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache_probing import CacheProbingResult


@dataclass(slots=True)
class ScopeStability:
    """One Table 2 column."""

    domain: str
    total_hits: int
    exact: int
    within_2: int
    within_4: int

    def share(self, bucket: str) -> float:
        """The named bucket's fraction of total hits."""
        if self.total_hits == 0:
            return 0.0
        return {"exact": self.exact, "within_2": self.within_2,
                "within_4": self.within_4}[bucket] / self.total_hits


def scope_stability(
    result: CacheProbingResult, domain: str | None = None
) -> ScopeStability:
    """Aggregate stability over all hits (or one domain's)."""
    total = exact = within2 = within4 = 0
    for hit_domain, query_len, response_len in result.scope_pairs:
        if domain is not None and hit_domain != domain:
            continue
        difference = abs(response_len - query_len)
        total += 1
        if difference == 0:
            exact += 1
        if difference <= 2:
            within2 += 1
        if difference <= 4:
            within4 += 1
    return ScopeStability(
        domain=domain or "Overall",
        total_hits=total,
        exact=exact,
        within_2=within2,
        within_4=within4,
    )


def scope_stability_table(result: CacheProbingResult) -> list[ScopeStability]:
    """Table 2: one column per domain plus the overall column."""
    columns = [scope_stability(result, d) for d in result.domains()]
    columns.append(scope_stability(result, None))
    return columns


def render_table(columns: list[ScopeStability]) -> str:
    """Fixed-width text rendering of the table."""
    lines = ["Scope stability (hits with |response - query| scope bits)"]
    header = f"{'domain':28}{'hits':>8}{'exact':>12}{'within 2':>12}{'within 4':>12}"
    lines.append(header)
    for col in columns:
        lines.append(
            f"{col.domain:28}{col.total_hits:>8}"
            f"{col.exact:>6} ({col.share('exact'):4.0%})"
            f"{col.within_2:>6} ({col.share('within_2'):4.0%})"
            f"{col.within_4:>6} ({col.share('within_4'):4.0%})"
        )
    return "\n".join(lines)
