"""Geographic density of active prefixes (Figure 1).

The paper plots the MaxMind geolocations of every prefix where cache
probing detected activity: activity roughly follows population within
regions.  We grid the globe and count active /24s per cell, plus
per-region aggregates that make the "Europe denser than China" style
comparisons concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.prefix import Prefix
from repro.world.builder import World
from repro.core.cache_probing import CacheProbingResult


@dataclass(slots=True)
class DensityGrid:
    """Active-prefix counts over a lat/lon grid."""

    cell_degrees: float
    cells: dict[tuple[int, int], int]

    def count_at(self, lat: float, lon: float) -> int:
        """Active-prefix count of the cell containing (lat, lon)."""
        key = (int(lat // self.cell_degrees), int(lon // self.cell_degrees))
        return self.cells.get(key, 0)

    def total(self) -> int:
        """Sum over all cells."""
        return sum(self.cells.values())

    def hottest(self, n: int = 10) -> list[tuple[tuple[float, float], int]]:
        """Top-n cells as (cell centre latlon, count)."""
        ranked = sorted(self.cells.items(), key=lambda kv: -kv[1])[:n]
        half = self.cell_degrees / 2
        return [
            ((key[0] * self.cell_degrees + half,
              key[1] * self.cell_degrees + half), count)
            for key, count in ranked
        ]


def active_prefix_density(
    world: World,
    result: CacheProbingResult,
    cell_degrees: float = 5.0,
) -> DensityGrid:
    """Figure 1's density: every active /24 (coarse return scopes are
    expanded to all their /24s, per the paper's simplifying assumption)
    binned by its geolocated position."""
    if cell_degrees <= 0:
        raise ValueError("cell_degrees must be positive")
    cells: dict[tuple[int, int], int] = {}
    for block_id in result.active_slash24_ids():
        entry = world.geodb.locate_prefix(Prefix(block_id << 8, 24))
        if entry is None:
            continue
        key = (int(entry.location.lat // cell_degrees),
               int(entry.location.lon // cell_degrees))
        cells[key] = cells.get(key, 0) + 1
    return DensityGrid(cell_degrees=cell_degrees, cells=cells)


def density_by_country(
    world: World, result: CacheProbingResult
) -> dict[str, int]:
    """Active /24 counts per (geolocated) country."""
    counts: dict[str, int] = {}
    for block_id in result.active_slash24_ids():
        entry = world.geodb.locate_prefix(Prefix(block_id << 8, 24))
        if entry is None:
            continue
        counts[entry.country] = counts.get(entry.country, 0) + 1
    return counts


def render_ascii_map(grid: DensityGrid, width: int = 72,
                     height: int = 24) -> str:
    """An ASCII world map of the density grid (Figure 1's visual).

    Rows run north to south over [-60°, 72°] latitude (where the
    world's cities live), columns west to east over the full longitude
    range; cell shade scales with the active-prefix count.
    """
    if width < 10 or height < 6:
        raise ValueError("map too small to render")
    shades = " .:-=+*#%@"
    lat_top, lat_bottom = 72.0, -60.0
    rows = []
    peak = max(grid.cells.values()) if grid.cells else 1
    for row in range(height):
        lat_high = lat_top - (lat_top - lat_bottom) * row / height
        lat_low = lat_top - (lat_top - lat_bottom) * (row + 1) / height
        line = []
        for col in range(width):
            lon_low = -180.0 + 360.0 * col / width
            lon_high = -180.0 + 360.0 * (col + 1) / width
            count = _cell_sum(grid, lat_low, lat_high, lon_low, lon_high)
            if count == 0:
                line.append(" ")
            else:
                index = 1 + min(len(shades) - 2,
                                int((count / peak) * (len(shades) - 2)))
                line.append(shades[index])
        rows.append("".join(line))
    return "\n".join(rows)


def _cell_sum(grid: DensityGrid, lat_low: float, lat_high: float,
              lon_low: float, lon_high: float) -> int:
    total = 0
    step = grid.cell_degrees
    for (lat_key, lon_key), count in grid.cells.items():
        cell_lat = lat_key * step + step / 2
        cell_lon = lon_key * step + step / 2
        if lat_low <= cell_lat < lat_high and lon_low <= cell_lon < lon_high:
            total += count
    return total


def density_by_region(
    world: World, result: CacheProbingResult
) -> dict[str, int]:
    """Active /24 counts per continent-style region."""
    regions = {c.code: c.region for c in world.countries}
    by_country = density_by_country(world, result)
    totals: dict[str, int] = {}
    for country, count in by_country.items():
        region = regions.get(country, "??")
        totals[region] = totals.get(region, 0) + count
    return totals
