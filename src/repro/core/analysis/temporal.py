"""Time-of-day activity analysis (§2's "time of day effects", §6's
diurnal signal at aggregate level).

The probing loop's hourly buckets, rotated into each prefix's local
time, give the composite diurnal curve of the measured population —
useful both to sanity-check the world (activity must dip at night) and
as the aggregate backdrop for the per-prefix human classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.prefix import Prefix
from repro.world.builder import World
from repro.core.cache_probing import CacheProbingResult


@dataclass(frozen=True, slots=True)
class DiurnalCurve:
    """Aggregate hit rate by local hour of day."""

    hourly_attempts: tuple[int, ...]   # 24 entries
    hourly_hits: tuple[int, ...]

    def rate(self, hour: int) -> float:
        """Hit rate at the given hour (0 when unprobed)."""
        attempts = self.hourly_attempts[hour % 24]
        if attempts == 0:
            return 0.0
        return self.hourly_hits[hour % 24] / attempts

    def rates(self) -> list[float]:
        """Hit rates for all 24 hours."""
        return [self.rate(h) for h in range(24)]

    @property
    def peak_hour(self) -> int:
        """Hour with the highest hit rate."""
        return max(range(24), key=self.rate)

    @property
    def trough_hour(self) -> int:
        """Probed hour with the lowest hit rate."""
        covered = [h for h in range(24) if self.hourly_attempts[h] > 0]
        if not covered:
            return 0
        return min(covered, key=self.rate)

    @property
    def amplitude(self) -> float:
        """Peak-to-trough hit-rate difference over probed hours."""
        covered = [self.rate(h) for h in range(24)
                   if self.hourly_attempts[h] > 0]
        if not covered:
            return 0.0
        return max(covered) - min(covered)


def aggregate_diurnal_curve(
    world: World,
    result: CacheProbingResult,
) -> DiurnalCurve:
    """The population-wide local-time hit-rate curve.

    Every probed prefix's UTC buckets are rotated by its geolocated
    longitude before pooling, so prefixes across time zones align on
    local time.
    """
    attempts = [0] * 24
    hits = [0] * 24
    for prefix, prefix_attempts in result.hourly_attempts.items():
        prefix_hits = result.hourly_hits.get(prefix, [0] * 24)
        entry = world.geodb.locate_prefix(prefix)
        shift = round(entry.location.lon / 15.0) if entry is not None else 0
        for utc_hour in range(24):
            local_hour = (utc_hour + shift) % 24
            attempts[local_hour] += prefix_attempts[utc_hour]
            hits[local_hour] += prefix_hits[utc_hour]
    return DiurnalCurve(hourly_attempts=tuple(attempts),
                        hourly_hits=tuple(hits))


def split_curves_by_population(
    world: World,
    result: CacheProbingResult,
) -> tuple[DiurnalCurve, DiurnalCurve]:
    """(human-block curve, bot-block curve) for /24-probed prefixes.

    A ground-truth view of the contrast §6's classifier exploits —
    humans sleep, machines don't.
    """
    curves = {True: ([0] * 24, [0] * 24), False: ([0] * 24, [0] * 24)}
    for prefix, prefix_attempts in result.hourly_attempts.items():
        if prefix.length != 24:
            continue
        block = world.block_by_slash24(prefix.network >> 8)
        if block is None:
            continue
        human = block.users > 0
        prefix_hits = result.hourly_hits.get(prefix, [0] * 24)
        entry = world.geodb.locate_prefix(prefix)
        shift = round(entry.location.lon / 15.0) if entry is not None else 0
        attempts, hits = curves[human]
        for utc_hour in range(24):
            local_hour = (utc_hour + shift) % 24
            attempts[local_hour] += prefix_attempts[utc_hour]
            hits[local_hour] += prefix_hits[utc_hour]
    human_curve = DiurnalCurve(tuple(curves[True][0]), tuple(curves[True][1]))
    bot_curve = DiurnalCurve(tuple(curves[False][0]), tuple(curves[False][1]))
    return human_curve, bot_curve


def render_curve(curve: DiurnalCurve, label: str) -> str:
    """A one-line sparkline of the 24 local-hour hit rates."""
    blocks = "▁▂▃▄▅▆▇█"
    peak = max(curve.rates()) or 1.0
    bars = "".join(
        blocks[min(7, int(rate / peak * 7.999))] for rate in curve.rates()
    )
    return (f"{label}: 00h {bars} 23h  "
            f"(peak {curve.peak_hour:02d}h, trough {curve.trough_hour:02d}h, "
            f"amplitude {curve.amplitude:.2f})")
