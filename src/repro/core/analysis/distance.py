"""Cache-hit distance distributions (Figure 2).

For a PoP, the distribution of distances between the PoP and the
(geolocated) prefixes whose calibration probes hit its caches.  The
90th percentile is the PoP's service radius; the paper shows three
geographically diverse PoPs with radii from 478 km to 3,273 km.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.geo import percentile
from repro.core.calibration import CalibrationResult


@dataclass(frozen=True, slots=True)
class DistanceCdf:
    """One Figure 2 series."""

    pop_id: str
    distances_km: tuple[float, ...]  # sorted ascending
    service_radius_km: float

    def cdf(self) -> list[tuple[float, float]]:
        """(value, cumulative fraction) steps for a CDF plot."""
        n = len(self.distances_km)
        return [(d, (i + 1) / n) for i, d in enumerate(self.distances_km)]

    def fraction_within(self, km: float) -> float:
        """Fraction of values within the given bound."""
        if not self.distances_km:
            return 0.0
        return sum(1 for d in self.distances_km if d <= km) / len(
            self.distances_km
        )


def distance_cdf(
    calibration: CalibrationResult,
    pop_id: str,
    radius_percentile: float = 0.90,
) -> DistanceCdf:
    """Figure 2 series for one PoP."""
    pop_calibration = calibration.per_pop[pop_id]
    distances = tuple(sorted(pop_calibration.hit_distances_km))
    if distances:
        radius = percentile(list(distances), radius_percentile)
    else:
        radius = pop_calibration.radius_km
    return DistanceCdf(
        pop_id=pop_id,
        distances_km=distances,
        service_radius_km=radius,
    )


def all_distance_cdfs(
    calibration: CalibrationResult,
    radius_percentile: float = 0.90,
) -> list[DistanceCdf]:
    """One series per calibrated PoP, sorted by radius."""
    series = [
        distance_cdf(calibration, pop_id, radius_percentile)
        for pop_id in calibration.per_pop
    ]
    series.sort(key=lambda s: s.service_radius_km)
    return series


def radius_spread(calibration: CalibrationResult) -> tuple[float, float]:
    """(min, max) service radius over PoPs that actually had hits —
    the paper reports a 478–3,273 km spread."""
    radii = [c.radius_km for c in calibration.per_pop.values()
             if c.hit_distances_km]
    if not radii:
        raise ValueError("no PoP had calibration hits")
    return min(radii), max(radii)
