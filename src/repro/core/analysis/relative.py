"""Relative per-AS activity comparisons (Figures 6 and 7, §B.3).

Each volume-bearing dataset normalises its per-AS volumes to sum to 1;
Figure 6 plots the distribution of those relative volumes per dataset,
and Figure 7 the per-AS *differences* between dataset pairs.  The
paper's observation: DNS logs tracks Microsoft resolvers closely (both
see resolver-level signals), while APNIC redistributes public-resolver
weight back to the client ASes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datasets import ActivityDataset


@dataclass(frozen=True, slots=True)
class RelativeVolumeSeries:
    """One Figure 6 CDF series."""

    name: str
    values: tuple[float, ...]  # sorted ascending, sums to ~1

    def cdf(self) -> list[tuple[float, float]]:
        """(value, cumulative fraction) steps for a CDF plot."""
        n = len(self.values)
        return [(v, (i + 1) / n) for i, v in enumerate(self.values)]

    def quantile(self, fraction: float) -> float:
        """The value at the given cumulative fraction."""
        if not self.values:
            raise ValueError(f"{self.name} has no values")
        index = min(len(self.values) - 1,
                    max(0, round(fraction * (len(self.values) - 1))))
        return self.values[index]


def relative_volume_series(dataset: ActivityDataset) -> RelativeVolumeSeries:
    """Figure 6 series for one dataset."""
    relative = dataset.relative_volume_by_asn()
    return RelativeVolumeSeries(
        name=dataset.name,
        values=tuple(sorted(relative.values())),
    )


@dataclass(frozen=True, slots=True)
class VolumeDifferenceSeries:
    """One Figure 7 series: per-AS difference between two datasets."""

    name_a: str
    name_b: str
    differences: tuple[float, ...]  # sorted ascending

    @property
    def label(self) -> str:
        """Human-readable series label."""
        return f"{self.name_a} - {self.name_b}"

    def cdf(self) -> list[tuple[float, float]]:
        """(value, cumulative fraction) steps for a CDF plot."""
        n = len(self.differences)
        return [(v, (i + 1) / n) for i, v in enumerate(self.differences)]

    def fraction_within(self, epsilon: float) -> float:
        """Fraction of ASes where the two datasets disagree by at most
        ``epsilon`` (the paper: ≤1e-5 for 90% of ASes)."""
        if not self.differences:
            return 0.0
        return sum(1 for d in self.differences if abs(d) <= epsilon) / len(
            self.differences
        )


def volume_difference_series(
    a: ActivityDataset, b: ActivityDataset
) -> VolumeDifferenceSeries:
    """Per-AS relative-volume differences over the union of ASes."""
    rel_a = a.relative_volume_by_asn()
    rel_b = b.relative_volume_by_asn()
    asns = set(rel_a) | set(rel_b)
    diffs = sorted(rel_a.get(asn, 0.0) - rel_b.get(asn, 0.0) for asn in asns)
    return VolumeDifferenceSeries(
        name_a=a.name, name_b=b.name, differences=tuple(diffs)
    )


def agreement_epsilon(
    series: VolumeDifferenceSeries, target_fraction: float = 0.9
) -> float:
    """Smallest ε with ≥ ``target_fraction`` of ASes within ±ε."""
    if not series.differences:
        raise ValueError("empty difference series")
    magnitudes = sorted(abs(d) for d in series.differences)
    index = min(len(magnitudes) - 1,
                max(0, int(target_fraction * len(magnitudes)) - 1))
    return magnitudes[index]
