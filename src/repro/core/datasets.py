"""Unified activity datasets for cross-comparison (§4).

Every data source — the two new techniques, APNIC, and the three
Microsoft views — reduces to an :class:`ActivityDataset`: a set of /24
ids, a set of ASes, and (where the source has one) a volume measure per
AS and per /24.  The overlap tables and relative-activity figures all
operate on this one shape.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.net.prefix import slash24_id
from repro.net.routing import RouteTable
from repro.world.builder import World
from repro.world.cdn import CdnService
from repro.core.cache_probing import CacheProbingResult
from repro.core.dns_logs import DnsLogsResult

#: Canonical dataset names, as the paper prints them.
CACHE_PROBING = "cache probing"
DNS_LOGS = "DNS logs"
UNION = "cache probing ∪ DNS logs"
APNIC = "APNIC"
MICROSOFT_CLIENTS = "Microsoft clients"
MICROSOFT_RESOLVERS = "Microsoft resolvers"
CLOUD_ECS = "cloud ECS prefixes"


@dataclass(slots=True)
class ActivityDataset:
    """One source's view of where clients are."""

    name: str
    slash24_ids: set[int] = field(default_factory=set)
    asns: set[int] = field(default_factory=set)
    volume_by_asn: dict[int, float] = field(default_factory=dict)
    volume_by_slash24: dict[int, float] = field(default_factory=dict)

    @property
    def has_volume(self) -> bool:
        """Whether this source measures activity volume (cache probing
        does not — Table 4 has no row for it)."""
        return bool(self.volume_by_asn)

    def total_volume(self) -> float:
        """Sum of per-AS volumes."""
        return sum(self.volume_by_asn.values())

    def volume_share_of_asns(self, asns: set[int]) -> float:
        """Fraction of this dataset's volume inside ``asns``."""
        total = self.total_volume()
        if total == 0:
            raise ValueError(f"{self.name} has no volume measure")
        return sum(v for a, v in self.volume_by_asn.items() if a in asns) / total

    def slash24_volume_share(self, ids: set[int]) -> float:
        """Fraction of per-/24 volume inside ``ids``."""
        total = sum(self.volume_by_slash24.values())
        if total == 0:
            raise ValueError(f"{self.name} has no per-/24 volume measure")
        return sum(v for i, v in self.volume_by_slash24.items()
                   if i in ids) / total

    def relative_volume_by_asn(self) -> dict[int, float]:
        """Per-AS volume normalised to sum to 1 (Figures 6 and 7)."""
        total = self.total_volume()
        if total == 0:
            raise ValueError(f"{self.name} has no volume measure")
        return {a: v / total for a, v in self.volume_by_asn.items()}

    def union(self, other: "ActivityDataset", name: str) -> "ActivityDataset":
        """Merged dataset: unions of sets, sums of volumes."""
        volumes: Counter[int] = Counter(self.volume_by_asn)
        volumes.update(other.volume_by_asn)
        slash24_volumes: Counter[int] = Counter(self.volume_by_slash24)
        slash24_volumes.update(other.volume_by_slash24)
        return ActivityDataset(
            name=name,
            slash24_ids=self.slash24_ids | other.slash24_ids,
            asns=self.asns | other.asns,
            volume_by_asn=dict(volumes),
            volume_by_slash24=dict(slash24_volumes),
        )


# -- constructors per source ------------------------------------------------

def from_cache_probing(
    result: CacheProbingResult, routes: RouteTable
) -> ActivityDataset:
    """Cache probing: prefixes and ASes, no volume measure (§B.2)."""
    return ActivityDataset(
        name=CACHE_PROBING,
        slash24_ids=result.active_slash24_ids(),
        asns=result.active_asns(routes),
    )


def from_dns_logs(result: DnsLogsResult, routes: RouteTable) -> ActivityDataset:
    """DNS logs: resolver prefixes/ASes with probe-count volume."""
    return ActivityDataset(
        name=DNS_LOGS,
        slash24_ids=result.resolver_slash24_ids(),
        asns=result.active_asns(routes),
        volume_by_asn={a: float(v)
                       for a, v in result.volume_by_asn(routes).items()},
        volume_by_slash24={slash24_id(ip): float(count)
                           for ip, count in result.resolver_counts.items()},
    )


def from_cdn_clients(cdn: CdnService, routes: RouteTable) -> ActivityDataset:
    """Microsoft clients: per-/24 HTTP request volume."""
    volume_by_slash24 = {i: float(v)
                         for i, v in cdn.microsoft_clients().items()}
    volume_by_asn: Counter[int] = Counter()
    asns: set[int] = set()
    for block_id, volume in volume_by_slash24.items():
        origin = routes.origin_of_address(block_id << 8)
        if origin is not None:
            asns.add(origin)
            volume_by_asn[origin] += volume
    return ActivityDataset(
        name=MICROSOFT_CLIENTS,
        slash24_ids=set(volume_by_slash24),
        asns=asns,
        volume_by_asn=dict(volume_by_asn),
        volume_by_slash24=volume_by_slash24,
    )


def from_cdn_resolvers(cdn: CdnService, routes: RouteTable) -> ActivityDataset:
    """Microsoft resolvers: distinct-client counts per resolver IP."""
    resolver_volumes = cdn.microsoft_resolvers()
    volume_by_slash24: Counter[int] = Counter()
    volume_by_asn: Counter[int] = Counter()
    asns: set[int] = set()
    for ip, clients in resolver_volumes.items():
        volume_by_slash24[slash24_id(ip)] += float(clients)
        origin = routes.origin_of_address(ip)
        if origin is not None:
            asns.add(origin)
            volume_by_asn[origin] += float(clients)
    return ActivityDataset(
        name=MICROSOFT_RESOLVERS,
        slash24_ids=set(volume_by_slash24),
        asns=asns,
        volume_by_asn=dict(volume_by_asn),
        volume_by_slash24=dict(volume_by_slash24),
    )


def from_cloud_ecs(
    cdn: CdnService, routes: RouteTable, start: float = 0.0
) -> ActivityDataset:
    """Cloud ECS prefixes seen at the Traffic Manager authoritative.

    ``start`` bounds the collection window so a measurement's own
    authoritative scans are not mistaken for client activity.
    """
    volume_by_slash24: Counter[int] = Counter()
    asns: set[int] = set()
    ids: set[int] = set()
    for prefix, count in cdn.ecs_query_volume_by_prefix(start=start).items():
        # ECS prefixes are /24s from resolvers and Google; expand
        # conservatively at /24 granularity.
        if prefix.length >= 24:
            block_ids = [prefix.network >> 8]
        else:
            first = prefix.network >> 8
            block_ids = list(range(first, first + prefix.num_slash24s()))
        for block_id in block_ids:
            ids.add(block_id)
            volume_by_slash24[block_id] += float(count) / len(block_ids)
        origin = routes.origin_of_prefix(prefix)
        if origin is not None:
            asns.add(origin)
    return ActivityDataset(
        name=CLOUD_ECS,
        slash24_ids=ids,
        asns=asns,
        volume_by_slash24=dict(volume_by_slash24),
    )


def from_apnic(estimates: dict[int, float]) -> ActivityDataset:
    """APNIC: AS-granularity only — no prefixes at all (§2)."""
    return ActivityDataset(
        name=APNIC,
        asns=set(estimates),
        volume_by_asn=dict(estimates),
    )


def build_all_datasets(
    world: World,
    cache_result: CacheProbingResult,
    logs_result: DnsLogsResult,
    apnic_estimates: dict[int, float],
) -> dict[str, ActivityDataset]:
    """Every dataset §4 compares, keyed by canonical name."""
    routes = world.routes
    cache = from_cache_probing(cache_result, routes)
    logs = from_dns_logs(logs_result, routes)
    datasets = {
        CACHE_PROBING: cache,
        DNS_LOGS: logs,
        UNION: cache.union(logs, UNION),
        APNIC: from_apnic(apnic_estimates),
        MICROSOFT_CLIENTS: from_cdn_clients(world.cdn, routes),
        MICROSOFT_RESOLVERS: from_cdn_resolvers(world.cdn, routes),
        CLOUD_ECS: from_cloud_ecs(
            world.cdn, routes, start=cache_result.measurement_window[0]
        ),
    }
    return datasets
