"""Scoring techniques against simulator ground truth.

The paper validates against CDN logs because the Internet's ground
truth is unknowable; the simulator knows exactly which /24s hold
clients, so every technique can be scored with real precision/recall —
at /24, AS, and per-country granularity.  This is the honest scorecard
a reproduction adds on top of the paper's own validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.builder import World
from repro.core.cache_probing import CacheProbingResult
from repro.core.dns_logs import DnsLogsResult


@dataclass(frozen=True, slots=True)
class Scorecard:
    """Binary-detection scores over a population of units."""

    unit: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """tp / (tp + fp), 0 when nothing was flagged."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """tp / (tp + fn), 0 when nothing was there to find."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return (2 * self.precision * self.recall
                / (self.precision + self.recall))

    def render(self) -> str:
        """Fixed-width text rendering."""
        return (f"{self.unit}: precision {self.precision:.1%}, "
                f"recall {self.recall:.1%}, F1 {self.f1:.2f} "
                f"(tp={self.true_positives} fp={self.false_positives} "
                f"fn={self.false_negatives})")


def _score_sets(unit: str, detected: set, truth: set) -> Scorecard:
    return Scorecard(
        unit=unit,
        true_positives=len(detected & truth),
        false_positives=len(detected - truth),
        false_negatives=len(truth - detected),
    )


def score_cache_probing_slash24(
    world: World, result: CacheProbingResult
) -> Scorecard:
    """Cache probing's /24 upper bound vs true client /24s.

    The paper's "too generous" upper bound shows up as low precision
    here; recall is what the looping fights the TTL race for.
    """
    return _score_sets("/24 (upper bound)", result.active_slash24_ids(),
                       world.client_slash24_ids())


def score_cache_probing_asn(
    world: World, result: CacheProbingResult
) -> Scorecard:
    """Cache probing's AS detection vs ground truth."""
    return _score_sets("AS", result.active_asns(world.routes),
                       world.asns_with_clients())


def score_dns_logs_asn(world: World, result: DnsLogsResult) -> Scorecard:
    """DNS logs vs ASes with clients.

    False positives here are the resolver-hosting-but-clientless ASes
    §4 warns about; false negatives are ASes whose clients resolve
    elsewhere.
    """
    return _score_sets("AS", result.active_asns(world.routes),
                       world.asns_with_clients())


def score_union_asn(
    world: World,
    cache_result: CacheProbingResult,
    logs_result: DnsLogsResult,
) -> Scorecard:
    """The two techniques' union vs ASes with clients."""
    detected = (cache_result.active_asns(world.routes)
                | logs_result.active_asns(world.routes))
    return _score_sets("AS (union)", detected, world.asns_with_clients())


@dataclass(frozen=True, slots=True)
class CountryScore:
    """One country's detection recall."""
    country: str
    detected_slash24s: int
    true_slash24s: int

    @property
    def recall(self) -> float:
        """tp / (tp + fn), 0 when nothing was there to find."""
        if self.true_slash24s == 0:
            return 0.0
        return min(1.0, self.detected_slash24s / self.true_slash24s)


def per_country_recall(
    world: World, result: CacheProbingResult
) -> list[CountryScore]:
    """Cache-probing /24 recall per country — the ground-truth version
    of Figure 3, sorted by true client count descending."""
    truth_by_country: dict[str, set[int]] = {}
    for block in world.client_blocks():
        truth_by_country.setdefault(block.country, set()).add(block.slash24)
    active = result.active_slash24_ids()
    rows = []
    for country, truth in truth_by_country.items():
        rows.append(CountryScore(
            country=country,
            detected_slash24s=len(truth & active),
            true_slash24s=len(truth),
        ))
    rows.sort(key=lambda r: -r.true_slash24s)
    return rows


def full_scorecard(
    world: World,
    cache_result: CacheProbingResult,
    logs_result: DnsLogsResult,
) -> str:
    """Every score, rendered — what the paper could never print."""
    lines = ["Ground-truth scorecard (simulation-only)"]
    lines.append("  cache probing " + score_cache_probing_slash24(
        world, cache_result).render())
    lines.append("  cache probing " + score_cache_probing_asn(
        world, cache_result).render())
    lines.append("  DNS logs      " + score_dns_logs_asn(
        world, logs_result).render())
    lines.append("  union         " + score_union_asn(
        world, cache_result, logs_result).render())
    worst = sorted(per_country_recall(world, cache_result),
                   key=lambda r: r.recall)[:3]
    lines.append("  weakest countries (/24 recall): " + ", ".join(
        f"{r.country}={r.recall:.0%}" for r in worst))
    return "\n".join(lines)
