"""Stage 1 of cache probing: learning authoritative ECS scopes.

§3.1.1: rather than probing Google for all ~15.5M public /24s, the
paper first queries each domain's *authoritative* directly across the
address space and records the response scopes.  Where the authoritative
answers a /24 query with a less specific scope (say /16), one Google
probe for the /16 stands in for 256 per-/24 probes.  The discovered
scopes become the query scopes used against Google Public DNS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.prefix import Prefix
from repro.net.routing import RouteTable
from repro.dns.authoritative import AuthoritativeServer
from repro.dns.message import DnsQuery, EcsOption, Transport
from repro.world.model import DomainSpec


@dataclass(slots=True)
class ScopePlan:
    """The probing plan for one domain: the query scopes to send."""

    domain: DomainSpec
    query_scopes: list[Prefix]
    authoritative_queries: int
    slash24s_covered: int

    @property
    def probes_saved(self) -> int:
        """How many per-/24 probes the scope reduction avoids."""
        return self.slash24s_covered - len(self.query_scopes)


def discover_scopes(
    domain: DomainSpec,
    server: AuthoritativeServer,
    routes: RouteTable,
    prober_ip: int = 0x0B0B0B0B,
) -> ScopePlan:
    """Scan the routed address space for ``domain``'s response scopes.

    Walks routed /24s in address order; each authoritative answer's
    scope covers a run of subsequent /24s that need no query of their
    own.  Domains without ECS support yield an empty plan — there is
    nothing to cache-probe per prefix.
    """
    if not domain.supports_ecs:
        return ScopePlan(domain=domain, query_scopes=[],
                         authoritative_queries=0, slash24s_covered=0)
    slash24_ids = sorted(set(routes.routed_slash24_ids()))
    scopes: list[Prefix] = []
    queries = 0
    skip_until = -1
    for block_id in slash24_ids:
        if block_id <= skip_until:
            continue
        target = Prefix(block_id << 8, 24)
        response = server.query(DnsQuery(
            name=domain.name,
            recursion_desired=False,
            ecs=EcsOption(prefix=target),
            source_ip=prober_ip,
            transport=Transport.UDP,
        ))
        queries += 1
        if not response.has_answer or response.ecs is None:
            continue
        scope_length = response.ecs.scope_length
        if scope_length is None:
            continue
        scope = Prefix.from_address(target.network, min(scope_length, 24))
        scopes.append(scope)
        # Every /24 inside the returned scope is covered by this entry.
        skip_until = (scope.last_address() >> 8)
    return ScopePlan(
        domain=domain,
        query_scopes=scopes,
        authoritative_queries=queries,
        slash24s_covered=len(slash24_ids),
    )


@dataclass(slots=True)
class DiscoveryResult:
    """Scope plans for every probe domain."""

    plans: dict[str, ScopePlan] = field(default_factory=dict)

    def add(self, plan: ScopePlan) -> None:
        """Register a domain's plan."""
        self.plans[str(plan.domain.name)] = plan

    def plan_for(self, domain_name: str) -> ScopePlan:
        """The plan for the named domain."""
        return self.plans[domain_name]

    def total_queries(self) -> int:
        """Authoritative queries spent across all plans."""
        return sum(p.authoritative_queries for p in self.plans.values())

    def total_query_scopes(self) -> int:
        """Query scopes produced across all plans."""
        return sum(len(p.query_scopes) for p in self.plans.values())


def discover_all(
    domains: list[DomainSpec],
    servers: dict[str, AuthoritativeServer],
    routes: RouteTable,
) -> DiscoveryResult:
    """Run scope discovery for each probe domain."""
    result = DiscoveryResult()
    for domain in domains:
        server = servers.get(domain.operator)
        if server is None:
            raise KeyError(f"no authoritative for operator {domain.operator!r}")
        result.add(discover_scopes(domain, server, routes))
    return result
