"""The low-level Google Public DNS prober.

Issues non-recursive, ECS-bearing queries over TCP (UDP probing of the
same domains trips a far lower rate limit, §3.1.1) from the cloud
vantage point that reaches each PoP, with redundant queries per target
because each PoP runs several independent cache pools [31].

``probe_once`` sends and classifies a single query; ``probe`` composes
a redundant batch from it.  The resilient driver
(:mod:`repro.core.resilient`) builds retry/backoff and circuit-breaker
logic on top of the single-query primitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.prefix import Prefix
from repro.dns.message import DnsQuery, EcsOption, Rcode, Transport
from repro.dns.name import DnsName
from repro.world.builder import World
from repro.world.vantage import VantagePoint, pops_by_vantage


class ProbeStatus(enum.Enum):
    """Classified outcome of one probe query — the prober's error
    taxonomy.  HIT/MISS are answers; REFUSED is an explicit rejection
    (rate limiting or load shedding); TIMEOUT is silence (packet loss
    or a dead PoP)."""

    HIT = "hit"
    MISS = "miss"
    REFUSED = "refused"
    TIMEOUT = "timeout"

    @property
    def answered(self) -> bool:
        """Whether the resolver produced an answer (hit or miss)."""
        return self in (ProbeStatus.HIT, ProbeStatus.MISS)


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """Aggregated outcome of the redundant queries for one target."""

    pop_id: str
    domain: str
    query_scope: Prefix
    hit: bool
    response_scope: int | None
    queries_sent: int
    refused: int = 0
    timed_out: int = 0

    @property
    def is_activity_evidence(self) -> bool:
        """A hit with return scope > 0; scope-0 entries are valid for
        the whole address space and say nothing about the prefix."""
        return self.hit and bool(self.response_scope)


class GoogleProber:
    """Probes PoP caches through the vantage point that reaches each."""

    def __init__(
        self,
        world: World,
        vantage_points: list[VantagePoint],
        redundancy: int = 3,
    ) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        self._world = world
        self._redundancy = redundancy
        self._vantage_by_pop: dict[str, VantagePoint] = {
            pop_id: vps[0]
            for pop_id, vps in pops_by_vantage(vantage_points).items()
        }
        self.probes_sent = 0
        self.refused = 0
        self.timed_out = 0

    @property
    def redundancy(self) -> int:
        """Redundant queries per probed target."""
        return self._redundancy

    @property
    def reachable_pops(self) -> list[str]:
        """PoPs this deployment can probe, sorted for determinism."""
        return sorted(self._vantage_by_pop)

    def vantage_for(self, pop_id: str) -> VantagePoint:
        """The vantage point this prober uses to reach a PoP."""
        vantage = self._vantage_by_pop.get(pop_id)
        if vantage is None:
            raise KeyError(f"no vantage point reaches PoP {pop_id!r}")
        return vantage

    def probe_once(
        self, pop_id: str, domain: DnsName, scope: Prefix
    ) -> tuple[ProbeStatus, int | None]:
        """Send one query for ⟨PoP, domain, prefix⟩ and classify it.

        Returns the status and, for a cache hit, the response scope.
        """
        vantage = self.vantage_for(pop_id)
        outcome = self._world.public_dns.query(
            DnsQuery(
                name=domain,
                recursion_desired=False,
                ecs=EcsOption(prefix=scope),
                source_ip=vantage.source_ip,
                transport=Transport.TCP,
            ),
            vantage.region.location,
            via="cloud",
        )
        self.probes_sent += 1
        response = outcome.response
        if response.rcode is Rcode.TIMEOUT:
            # Silence carries no PoP evidence — the catchment check
            # below needs a response to compare against.
            self.timed_out += 1
            return ProbeStatus.TIMEOUT, None
        if outcome.pop_id != pop_id:
            raise RuntimeError(
                f"vantage for {pop_id} was routed to {outcome.pop_id}; "
                "anycast catchment changed under the prober"
            )
        if response.rcode is Rcode.REFUSED:
            self.refused += 1
            return ProbeStatus.REFUSED, None
        if response.cache_hit:
            return ProbeStatus.HIT, response.scope_length
        return ProbeStatus.MISS, None

    def probe_ghost(self, pop_id: str, domain: DnsName, scope: Prefix) -> None:
        """Replay another shard's redundant batch as ghost queries.

        Sends nothing and counts nothing, but walks the same per-query
        resolver prefix as :meth:`probe_once` — so rate-limit tokens
        are consumed at exactly the schedule positions the serial run
        consumes them (see ``GooglePublicDns.query(ghost=True)``).
        """
        vantage = self.vantage_for(pop_id)
        for _ in range(self._redundancy):
            self._world.public_dns.query(
                DnsQuery(
                    name=domain,
                    recursion_desired=False,
                    ecs=EcsOption(prefix=scope),
                    source_ip=vantage.source_ip,
                    transport=Transport.TCP,
                ),
                vantage.region.location,
                via="cloud",
                ghost=True,
            )

    def probe(self, pop_id: str, domain: DnsName, scope: Prefix) -> ProbeResult:
        """Send the redundant query batch for one ⟨PoP, domain, prefix⟩."""
        hit = False
        response_scope: int | None = None
        refused = 0
        timed_out = 0
        for _ in range(self._redundancy):
            status, scope_length = self.probe_once(pop_id, domain, scope)
            if status is ProbeStatus.REFUSED:
                refused += 1
            elif status is ProbeStatus.TIMEOUT:
                timed_out += 1
            elif status is ProbeStatus.HIT and not hit:
                hit = True
                response_scope = scope_length
        return ProbeResult(
            pop_id=pop_id,
            domain=str(domain),
            query_scope=scope,
            hit=hit,
            response_scope=response_scope,
            queries_sent=self._redundancy,
            refused=refused,
            timed_out=timed_out,
        )
