"""The low-level Google Public DNS prober.

Issues non-recursive, ECS-bearing queries over TCP (UDP probing of the
same domains trips a far lower rate limit, §3.1.1) from the cloud
vantage point that reaches each PoP, with redundant queries per target
because each PoP runs several independent cache pools [31].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.prefix import Prefix
from repro.dns.message import DnsQuery, EcsOption, Rcode, Transport
from repro.dns.name import DnsName
from repro.world.builder import World
from repro.world.vantage import VantagePoint, pops_by_vantage


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """Aggregated outcome of the redundant queries for one target."""

    pop_id: str
    domain: str
    query_scope: Prefix
    hit: bool
    response_scope: int | None
    queries_sent: int
    refused: int = 0

    @property
    def is_activity_evidence(self) -> bool:
        """A hit with return scope > 0; scope-0 entries are valid for
        the whole address space and say nothing about the prefix."""
        return self.hit and bool(self.response_scope)


class GoogleProber:
    """Probes PoP caches through the vantage point that reaches each."""

    def __init__(
        self,
        world: World,
        vantage_points: list[VantagePoint],
        redundancy: int = 3,
    ) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        self._world = world
        self._redundancy = redundancy
        self._vantage_by_pop: dict[str, VantagePoint] = {
            pop_id: vps[0]
            for pop_id, vps in pops_by_vantage(vantage_points).items()
        }
        self.probes_sent = 0
        self.refused = 0

    @property
    def reachable_pops(self) -> list[str]:
        """PoPs this deployment can probe, sorted for determinism."""
        return sorted(self._vantage_by_pop)

    def probe(self, pop_id: str, domain: DnsName, scope: Prefix) -> ProbeResult:
        """Send the redundant query batch for one ⟨PoP, domain, prefix⟩."""
        vantage = self._vantage_by_pop.get(pop_id)
        if vantage is None:
            raise KeyError(f"no vantage point reaches PoP {pop_id!r}")
        hit = False
        response_scope: int | None = None
        refused = 0
        for _ in range(self._redundancy):
            outcome = self._world.public_dns.query(
                DnsQuery(
                    name=domain,
                    recursion_desired=False,
                    ecs=EcsOption(prefix=scope),
                    source_ip=vantage.source_ip,
                    transport=Transport.TCP,
                ),
                vantage.region.location,
                via="cloud",
            )
            self.probes_sent += 1
            if outcome.pop_id != pop_id:
                raise RuntimeError(
                    f"vantage for {pop_id} was routed to {outcome.pop_id}; "
                    "anycast catchment changed under the prober"
                )
            response = outcome.response
            if response.rcode is Rcode.REFUSED:
                refused += 1
                continue
            if response.cache_hit and not hit:
                hit = True
                response_scope = response.scope_length
        self.refused += refused
        return ProbeResult(
            pop_id=pop_id,
            domain=str(domain),
            query_scope=scope,
            hit=hit,
            response_scope=response_scope,
            queries_sent=self._redundancy,
            refused=refused,
        )
