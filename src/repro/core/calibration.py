"""Stage 2 of cache probing: per-PoP service radii.

§3.1.1: each PoP is first probed with a random sample of prefixes whose
MaxMind error radius is under 200 km.  The 90th percentile of the
distances from cache-*hit* prefixes to the PoP becomes that PoP's
*service radius*; the main measurement then probes a PoP only for
prefixes that MaxMind places possibly within it (location error radius
included).  The paper's radii ranged 478–3,273 km and cut the probe
budget from 4.4M to 2.4M prefixes per PoP.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.geo import percentile
from repro.net.prefix import Prefix
from repro.world.builder import World
from repro.world.model import DomainSpec
from repro.core.prober import GoogleProber


@dataclass(frozen=True, slots=True)
class CalibrationConfig:
    """Knobs for the service-radius calibration stage."""
    sample_size: int = 400
    max_error_radius_km: float = 200.0
    radius_percentile: float = 0.90
    min_hits: int = 5             # below this, fall back to max radius
    fallback_radius_km: float = 5524.0  # the paper's Zurich maximum

    def __post_init__(self) -> None:
        if self.sample_size < 1:
            raise ValueError("sample_size must be positive")
        if not 0.0 < self.radius_percentile <= 1.0:
            raise ValueError("radius_percentile out of (0, 1]")


@dataclass(slots=True)
class PopCalibration:
    """One PoP's calibration outcome."""

    pop_id: str
    radius_km: float
    hit_count: int
    probe_count: int
    hit_distances_km: list[float]


@dataclass(slots=True)
class CalibrationResult:
    """Calibration outcomes for every probed PoP."""
    per_pop: dict[str, PopCalibration]

    def radius_of(self, pop_id: str) -> float:
        """The calibrated service radius of one PoP, in km."""
        return self.per_pop[pop_id].radius_km

    def mean_radius_km(self) -> float:
        """Mean service radius over calibrated PoPs."""
        if not self.per_pop:
            raise ValueError("no calibrated PoPs")
        return sum(c.radius_km for c in self.per_pop.values()) / len(self.per_pop)

    def max_radius_km(self) -> float:
        """Largest calibrated service radius."""
        return max(c.radius_km for c in self.per_pop.values())


def eligible_calibration_prefixes(
    world: World, config: CalibrationConfig
) -> list[Prefix]:
    """Routed /24s whose geolocation claims an error radius under the
    threshold — the only prefixes trustworthy enough to calibrate with."""
    eligible = []
    for block_id in set(world.routes.routed_slash24_ids()):
        prefix = Prefix(block_id << 8, 24)
        entry = world.geodb.locate_prefix(prefix)
        if entry is not None and entry.error_radius_km <= config.max_error_radius_km:
            eligible.append(prefix)
    eligible.sort()
    return eligible


def calibrate(
    world: World,
    prober: GoogleProber,
    domains: list[DomainSpec],
    config: CalibrationConfig | None = None,
    seed: int = 13,
) -> CalibrationResult:
    """Measure every reachable PoP's service radius.

    Should run while client activity is warm (caches populated);
    otherwise nothing hits and every PoP falls back to the maximum
    radius.
    """
    config = config or CalibrationConfig()
    rng = random.Random(seed)
    candidates = eligible_calibration_prefixes(world, config)
    if not candidates:
        raise RuntimeError("no geolocated prefixes eligible for calibration")
    sample = (candidates if len(candidates) <= config.sample_size
              else rng.sample(candidates, config.sample_size))
    per_pop: dict[str, PopCalibration] = {}
    for pop_id in prober.reachable_pops:
        pop = next(d.pop for d in world.pop_descriptors if d.pop_id == pop_id)
        distances: list[float] = []
        probes = 0
        for prefix in sample:
            probes += 1
            hit = False
            for domain in domains:
                result = prober.probe(pop_id, domain.name, prefix)
                if result.is_activity_evidence:
                    hit = True
                    break
            if not hit:
                continue
            entry = world.geodb.locate_prefix(prefix)
            assert entry is not None  # eligible ⇒ located
            distances.append(entry.location.distance_km(pop.location))
        if len(distances) >= config.min_hits:
            radius = percentile(distances, config.radius_percentile)
        else:
            radius = config.fallback_radius_km
        per_pop[pop_id] = PopCalibration(
            pop_id=pop_id,
            radius_km=radius,
            hit_count=len(distances),
            probe_count=probes,
            hit_distances_km=distances,
        )
    return CalibrationResult(per_pop=per_pop)
