"""Exporting measurement results.

The paper commits to sharing its data ("we are happy to share our
data (except proprietary data we use for validation)").  This module
serialises the shareable artefacts — active prefix lists, per-resolver
Chromium counts, unified datasets — to JSON and CSV, and reloads them,
so downstream users can consume a measurement without running one.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.net.prefix import Prefix
from repro.core.cache_probing import CacheProbingResult
from repro.core.datasets import ActivityDataset
from repro.core.dns_logs import DnsLogsResult


# -- active prefix lists (cache probing) -------------------------------------

def cache_probing_to_json(result: CacheProbingResult) -> str:
    """The shareable cache-probing artefact: per-domain active prefixes
    with hit metadata."""
    payload: dict[str, Any] = {
        "format": "repro.cache_probing.v1",
        "probes_sent": result.probes_sent,
        "hits": [
            {
                "pop": hit.pop_id,
                "domain": hit.domain,
                "query_scope": str(hit.query_scope),
                "response_scope": hit.response_scope,
                "timestamp": hit.timestamp,
            }
            for hit in result.hits
        ],
        "service_radii_km": {
            pop_id: calibration.radius_km
            for pop_id, calibration in result.calibration.per_pop.items()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def active_prefixes_to_csv(result: CacheProbingResult) -> str:
    """One row per ⟨domain, active prefix⟩, ready for a spreadsheet."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["domain", "active_prefix", "response_scope", "pop"])
    for hit in sorted(result.hits,
                      key=lambda h: (h.domain, h.query_scope)):
        writer.writerow([hit.domain, str(hit.active_prefix()),
                         hit.response_scope, hit.pop_id])
    return buffer.getvalue()


# -- resolver counts (DNS logs) ------------------------------------------------

def dns_logs_to_json(result: DnsLogsResult) -> str:
    """The shareable DNS-logs artefact: per-resolver probe counts."""
    payload = {
        "format": "repro.dns_logs.v1",
        "window": list(result.window),
        "letters": result.letters,
        "resolver_counts": {
            str(Prefix.from_address(ip, 32)).split("/")[0]: count
            for ip, count in sorted(result.resolver_counts.items())
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# -- root traces (the DITL workflow) -----------------------------------------

def root_traces_to_json(
    traces: "dict[str, list]",
) -> str:
    """Serialise per-letter DITL traces (the artefact DNS-OARC ships,
    minus the pcap framing)."""
    payload = {
        "format": "repro.ditl.v1",
        "letters": {
            letter: [
                {
                    "ts": entry.timestamp,
                    "src": entry.source_ip,
                    "qname": str(entry.name),
                    "rcode": entry.rcode.name,
                }
                for entry in entries
            ]
            for letter, entries in sorted(traces.items())
        },
    }
    return json.dumps(payload, sort_keys=True)


def root_traces_from_json(text: str) -> "dict[str, list]":
    """Reload traces written by :func:`root_traces_to_json` into the
    entry objects the classifier consumes."""
    from repro.dns.message import QueryLogEntry, Rcode
    from repro.dns.name import DnsName

    payload = json.loads(text)
    if payload.get("format") != "repro.ditl.v1":
        raise ValueError(f"unsupported format {payload.get('format')!r}")
    traces = {}
    for letter, entries in payload["letters"].items():
        traces[letter] = [
            QueryLogEntry(
                timestamp=float(e["ts"]),
                source_ip=int(e["src"]),
                name=DnsName.parse(e["qname"]),
                rcode=Rcode[e["rcode"]],
            )
            for e in entries
        ]
    return traces


# -- unified datasets ----------------------------------------------------------

def dataset_to_json(dataset: ActivityDataset) -> str:
    """Serialise an ActivityDataset to JSON."""
    payload = {
        "format": "repro.dataset.v1",
        "name": dataset.name,
        "slash24_ids": sorted(dataset.slash24_ids),
        "asns": sorted(dataset.asns),
        "volume_by_asn": {str(k): v for k, v
                          in sorted(dataset.volume_by_asn.items())},
        "volume_by_slash24": {str(k): v for k, v
                              in sorted(dataset.volume_by_slash24.items())},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def dataset_from_json(text: str) -> ActivityDataset:
    """Parse a dataset serialised by dataset_to_json."""
    payload = json.loads(text)
    if payload.get("format") != "repro.dataset.v1":
        raise ValueError(f"unsupported format {payload.get('format')!r}")
    return ActivityDataset(
        name=payload["name"],
        slash24_ids=set(payload["slash24_ids"]),
        asns=set(payload["asns"]),
        volume_by_asn={int(k): float(v)
                       for k, v in payload["volume_by_asn"].items()},
        volume_by_slash24={int(k): float(v)
                           for k, v in payload["volume_by_slash24"].items()},
    )
