"""The DNS-logs technique (§3.2): crawling DITL root traces for
Chromium probes.

Output granularity is the *recursive resolver*: each accepted probe is
evidence that some client behind the source resolver launched a
Chromium browser.  Per-resolver counts double as a relative activity
measure (§B.3), and resolver IPs map to /24 prefixes and origin ASes
for the cross-comparisons of §4.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.net.prefix import Prefix, slash24_id
from repro.net.routing import RouteTable
from repro.dns.message import QueryLogEntry
from repro.sim.clock import DAY
from repro.world.builder import World
from repro.core.chromium import (
    DEFAULT_DAILY_THRESHOLD,
    ChromiumClassification,
    classify_entries,
)


@dataclass(frozen=True, slots=True)
class DnsLogsConfig:
    """DITL collection window and classifier threshold."""

    window_days: float = 2.0           # DITL collections span two days
    daily_threshold: int = DEFAULT_DAILY_THRESHOLD

    def __post_init__(self) -> None:
        if self.window_days <= 0:
            raise ValueError("window_days must be positive")
        if self.daily_threshold < 1:
            raise ValueError("daily_threshold must be at least 1")


@dataclass(slots=True)
class DnsLogsResult:
    """What the crawl produced."""

    resolver_counts: dict[int, int]
    classification: ChromiumClassification
    window: tuple[float, float]
    letters: list[str] = field(default_factory=list)

    # -- derived views -------------------------------------------------------

    def resolver_ips(self) -> set[int]:
        """Every resolver IP with accepted probes."""
        return set(self.resolver_counts)

    def resolver_slash24_ids(self) -> set[int]:
        """/24 prefixes hosting an observed recursive resolver."""
        return {slash24_id(ip) for ip in self.resolver_counts}

    def resolver_prefixes(self) -> set[Prefix]:
        """/24 prefixes of the observed resolvers."""
        return {Prefix.from_address(ip, 24) for ip in self.resolver_counts}

    def active_asns(self, routes: RouteTable) -> set[int]:
        """Origin ASes of the observed resolvers."""
        asns: set[int] = set()
        for ip in self.resolver_counts:
            origin = routes.origin_of_address(ip)
            if origin is not None:
                asns.add(origin)
        return asns

    def volume_by_asn(self, routes: RouteTable) -> dict[int, int]:
        """Chromium query counts aggregated to the resolver's AS."""
        volumes: Counter[int] = Counter()
        for ip, count in self.resolver_counts.items():
            origin = routes.origin_of_address(ip)
            if origin is not None:
                volumes[origin] += count
        return dict(volumes)

    def total_probes(self) -> int:
        """Total accepted Chromium probes."""
        return sum(self.resolver_counts.values())


class DnsLogsPipeline:
    """Crawls a world's root traces for Chromium activity."""

    def __init__(self, world: World, config: DnsLogsConfig | None = None) -> None:
        self.world = world
        self.config = config or DnsLogsConfig()

    def run(
        self, start: float | None = None, end: float | None = None,
        checkpointer=None,
    ) -> DnsLogsResult:
        """Process the DITL window ``[start, end)``.

        Defaults to the trailing ``window_days`` of simulated time —
        run client activity first or the traces are empty.

        With a checkpointer attached, the window and each crawled root
        letter are journaled, so a campaign killed mid-crawl resumes
        from the post-probing snapshot and re-walks the letters under
        journal verification — the crawl restarts mid-window instead of
        being lost with the process.
        """
        config = self.config
        if end is None:
            end = self.world.clock.now
        if start is None:
            start = max(0.0, end - config.window_days * DAY)
        journal = checkpointer.record if checkpointer is not None else None
        if journal:
            journal({"type": "phase", "name": "dns_logs_start",
                     "start": start, "end": end})
        traces = self.world.roots.ditl_traces(start, end)
        combined: list[QueryLogEntry] = []
        for letter in sorted(traces):
            combined.extend(traces[letter])
            if journal:
                journal({"type": "dns_letter", "letter": letter,
                         "entries": len(traces[letter])})
        classification = classify_entries(combined, config.daily_threshold)
        return DnsLogsResult(
            resolver_counts=dict(classification.resolver_counts()),
            classification=classification,
            window=(start, end),
            letters=sorted(traces),
        )

    def crawl_shard(
        self, shard, start: float | None = None, end: float | None = None,
        checkpointer=None,
    ) -> tuple[tuple[float, float], dict[str, list[QueryLogEntry]]]:
        """One shard's slice of the crawl: root letters are dealt
        round-robin over the sorted letter list, so every letter belongs
        to exactly one shard and the union over shards is the full
        window.  Returns the window and the owned letters' raw entries;
        classification happens once, on the merged crawl (see
        :func:`repro.parallel.merge.merge_dns_logs`), because the
        per-resolver daily thresholds only make sense globally.

        Journaling mirrors :meth:`run`: the window and each *owned*
        letter are recorded, so a crashed shard resumes its slice of
        the crawl under the same replay verification.
        """
        config = self.config
        if end is None:
            end = self.world.clock.now
        if start is None:
            start = max(0.0, end - config.window_days * DAY)
        journal = checkpointer.record if checkpointer is not None else None
        if journal:
            journal({"type": "phase", "name": "dns_logs_start",
                     "start": start, "end": end, "shard": shard.shard_id})
        traces = self.world.roots.ditl_traces(start, end)
        owned: dict[str, list[QueryLogEntry]] = {}
        for index, letter in enumerate(sorted(traces)):
            if index % shard.num_shards != shard.shard_id:
                continue
            owned[letter] = list(traces[letter])
            if journal:
                journal({"type": "dns_letter", "letter": letter,
                         "entries": len(traces[letter])})
        return (start, end), owned
