"""Checkpoint integrity: scan, classify, quarantine, self-heal.

This module is the trust boundary between a checkpoint directory and
the code that resumes from it.  :func:`scan_checkpoint` walks every
artifact a campaign, parallel campaign, or continuous service leaves
on disk — journals, snapshots, window deltas, manifests, aggregates,
shard results — and classifies each one:

* **clean** — bytes verify and cross-references hold;
* **torn-tail** — a journal's valid prefix is followed only by
  unparseable bytes: the ordinary power-cut signature, safe to
  truncate because the resumed run regenerates the lost tail
  deterministically;
* **corrupt** — mid-file damage (CRC mismatch with valid frames
  surviving past it, bad header, undecodable payload): bit rot, never
  auto-truncated;
* **orphaned** — an artifact no journal record references (a snapshot
  saved in the crash window before its marker was appended);
* **inconsistent** — artifacts that are individually fine but disagree
  (a manifest claiming windows the journal never completed);
* **stale-tmp** — a ``.tmp`` leftover of an interrupted atomic write.

:func:`repair_checkpoint` applies the matching repair policy: torn
tails truncate; corrupt artifacts move to ``quarantine/`` with a
machine-readable reason file; recovery then rolls back to the newest
snapshot boundary all surviving artifacts agree on and deterministic
replay regenerates everything lost.  When no consistent state survives
— every snapshot corrupt, the config unrecoverable — repair refuses
loudly (:class:`UnrepairableError`, CLI exit 2) rather than fabricate
a resumable-looking state.

The contract, enforced by ``tests/persist/test_corruption_properties``:
for any single injected corruption, resume after ``repro fsck
--repair`` reproduces the byte-identical campaign result, or fails
loudly.  Silent divergence is the one forbidden outcome.
"""

from __future__ import annotations

import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.persist.journal import Journal, JournalScan, rewrite
from repro.persist.snapshot import verify_bytes as verify_snapshot_bytes

QUARANTINE_DIR = "quarantine"

#: artifact kinds a finding can point at.
KINDS = ("journal", "snapshot", "delta", "manifest", "aggregate",
         "result", "config", "tmp", "directory")

#: classification states.
STATUSES = ("clean", "torn-tail", "corrupt", "orphaned", "inconsistent",
            "stale-tmp")

#: repair actions; "none" marks clean artifacts, "unrepairable" marks
#: damage no policy can heal.
REPAIRS = ("none", "truncate", "quarantine", "rebuild", "rerun", "sweep",
           "unrepairable")


class IntegrityError(RuntimeError):
    """A checkpoint directory cannot be trusted for resume."""


class UnrepairableError(IntegrityError):
    """No consistent state survives — repair refuses to fabricate one."""


@dataclass(frozen=True, slots=True)
class Finding:
    """One artifact's classification."""

    #: path relative to the checkpoint directory.
    artifact: str
    kind: str
    status: str
    detail: str = ""
    #: the repair action fsck --repair would take.
    repair: str = "none"

    @property
    def damaged(self) -> bool:
        return self.status != "clean"

    @property
    def fatal(self) -> bool:
        """Whether resume must not proceed before repair.

        Torn tails and stale temporaries are ordinary crash residue the
        resume path already heals; orphaned snapshots/deltas are crash
        artifacts recovery simply ignores.  Everything else — mid-file
        corruption, cross-reference breaks — is fatal.
        """
        return self.status in ("corrupt", "inconsistent")

    def render(self) -> str:
        line = f"{self.status:<12} {self.kind:<9} {self.artifact}"
        if self.detail:
            line += f" — {self.detail}"
        if self.repair != "none":
            line += f" [repair: {self.repair}]"
        return line


@dataclass(slots=True)
class ScanStats:
    """How much work one integrity scan did (advisory, for fsck output)."""

    duration_s: float = 0.0
    bytes_scanned: int = 0
    #: findings per artifact kind, e.g. {"journal": 1, "snapshot": 2}.
    artifacts_by_kind: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"duration_s": round(self.duration_s, 6),
                "bytes_scanned": self.bytes_scanned,
                "artifacts_by_kind": dict(sorted(
                    self.artifacts_by_kind.items()))}


@dataclass(slots=True)
class IntegrityReport:
    """Everything one scan established about a checkpoint directory."""

    directory: Path
    #: "campaign" | "parallel" | "service" | "shard" | "empty" | "unknown"
    checkpoint_kind: str
    findings: list[Finding] = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)

    @property
    def damaged(self) -> list[Finding]:
        return [f for f in self.findings if f.damaged]

    @property
    def fatal(self) -> list[Finding]:
        return [f for f in self.findings if f.fatal]

    @property
    def unrepairable(self) -> list[Finding]:
        return [f for f in self.findings if f.repair == "unrepairable"]

    @property
    def clean(self) -> bool:
        return not self.damaged

    def render(self) -> str:
        lines = [f"{self.directory}: {self.checkpoint_kind} checkpoint, "
                 f"{len(self.findings)} artifact(s) scanned, "
                 f"{len(self.damaged)} damaged"]
        stats = self.stats
        if stats.artifacts_by_kind or stats.bytes_scanned:
            kinds = " ".join(f"{kind}={count}" for kind, count
                             in sorted(stats.artifacts_by_kind.items()))
            lines.append(f"  scanned {stats.bytes_scanned:,} bytes in "
                         f"{stats.duration_s:.3f}s ({kinds})")
        for finding in self.findings:
            if finding.damaged:
                lines.append("  " + finding.render())
        return "\n".join(lines)


# -- kind detection -----------------------------------------------------------


def detect_checkpoint_kind(directory: str | Path) -> str:
    """What flavour of checkpoint a directory holds.

    Detection is structural and deliberately redundant: a corrupt
    manifest must not hide the shard directories that prove a parallel
    campaign lives here.
    """
    directory = Path(directory)
    if not directory.exists():
        return "empty"
    manifest = directory / "manifest.json"
    if manifest.exists():
        try:
            meta = json.loads(manifest.read_bytes())
        except ValueError:
            meta = None
        if isinstance(meta, dict):
            if str(meta.get("format", "")).startswith("repro.parallel.v"):
                return "parallel"
            if meta.get("kind") == "service":
                return "service"
    if any(directory.glob("shard-*")):
        return "parallel"
    if (directory / "windows").is_dir() or manifest.exists():
        return "service"
    if (directory / "journal.bin").exists() \
            or any(directory.glob("snapshot-*.bin")):
        return "campaign"
    return "empty" if not any(directory.iterdir()) else "unknown"


# -- scanning -----------------------------------------------------------------


def scan_checkpoint(directory: str | Path) -> IntegrityReport:
    """Scan a whole checkpoint directory; never modifies anything."""
    directory = Path(directory)
    started = time.monotonic()
    kind = detect_checkpoint_kind(directory)
    report = IntegrityReport(directory=directory, checkpoint_kind=kind)
    if kind == "unknown":
        report.findings.append(Finding(
            ".", "directory", "inconsistent",
            "directory is non-empty but holds no recognizable "
            "checkpoint", repair="unrepairable"))
    elif kind == "parallel":
        _scan_parallel(directory, report)
    elif kind == "service":
        _scan_service(directory, report)
    elif kind != "empty":
        _scan_campaign_dir(directory, report, prefix="")
    _fill_scan_stats(directory, report, started)
    return report


def _fill_scan_stats(directory: Path, report: IntegrityReport,
                     started: float) -> None:
    """Tally scan volume: per-kind finding counts and bytes on disk."""
    stats = report.stats
    for finding in report.findings:
        stats.artifacts_by_kind[finding.kind] = (
            stats.artifacts_by_kind.get(finding.kind, 0) + 1)
        path = directory / finding.artifact
        try:
            if path.is_file():
                stats.bytes_scanned += path.stat().st_size
        except OSError:  # pragma: no cover - racing deletion
            pass
    stats.duration_s = time.monotonic() - started


def _scan_journal(directory: Path, report: IntegrityReport,
                  prefix: str) -> JournalScan:
    """Scan one journal.bin; returns the raw scan for cross-refs."""
    path = directory / "journal.bin"
    rel = prefix + "journal.bin"
    scan = Journal.scan(path)
    if not path.exists():
        report.findings.append(Finding(
            rel, "journal", "inconsistent",
            "journal is missing", repair="unrepairable"))
    elif scan.clean:
        report.findings.append(Finding(rel, "journal", "clean"))
    elif scan.damage == "torn":
        report.findings.append(Finding(
            rel, "journal", "torn-tail", scan.detail, repair="truncate"))
    else:
        # Mid-file corruption or a rotted magic.  The valid prefix (or
        # the frames salvaged past a bad magic) can be rebuilt into a
        # clean journal; replay regenerates the rest.
        salvage = scan.records
        repair = "quarantine" if salvage else "unrepairable"
        report.findings.append(Finding(
            rel, "journal", "corrupt", scan.detail, repair=repair))
    return scan


def _scan_snapshots(directory: Path, report: IntegrityReport,
                    scan: JournalScan, prefix: str) -> list[str]:
    """Scan snapshot files against the journal's markers.

    Returns the names of loadable snapshots, newest first.
    """
    referenced = [r["file"] for r in scan.records
                  if r.get("type") == "snapshot" and "file" in r]
    on_disk = sorted(p.name for p in directory.glob("snapshot-*.bin"))
    loadable: list[str] = []
    for name in on_disk:
        rel = prefix + name
        try:
            verify_snapshot_bytes(name, (directory / name).read_bytes())
        except Exception as exc:
            report.findings.append(Finding(
                rel, "snapshot", "corrupt", str(exc), repair="quarantine"))
            continue
        if name not in referenced:
            report.findings.append(Finding(
                rel, "snapshot", "orphaned",
                "no journal record references this snapshot (crash "
                "between save and marker append)", repair="quarantine"))
            continue
        report.findings.append(Finding(rel, "snapshot", "clean"))
        loadable.append(name)
    loadable.sort(reverse=True)
    # A marker pointing at a missing snapshot is normal for pruned old
    # generations, and even a missing *newest* snapshot is healed by
    # falling back to an older loadable one (recovery walks markers
    # newest-first) — so a missing reference is benign as long as any
    # loadable snapshot survives.
    newest_loadable = loadable[0] if loadable else ""
    for name in referenced:
        if name in on_disk or name <= newest_loadable:
            continue
        if loadable:
            report.findings.append(Finding(
                prefix + name, "snapshot", "orphaned",
                "journal references this snapshot but the file is "
                "missing; recovery falls back to an older snapshot"))
        else:
            report.findings.append(Finding(
                prefix + name, "snapshot", "inconsistent",
                "journal references this snapshot but the file is "
                "missing and no snapshot survives to fall back to",
                repair="unrepairable"))
    for tmp in sorted(directory.glob("snapshot-*.bin.tmp")):
        report.findings.append(Finding(
            prefix + tmp.name, "tmp", "stale-tmp",
            "interrupted snapshot write", repair="sweep"))
    return loadable


def _scan_campaign_dir(directory: Path, report: IntegrityReport,
                       prefix: str) -> tuple[JournalScan, list[str]]:
    """The shared journal + snapshot scan every checkpoint kind rides."""
    scan = _scan_journal(directory, report, prefix)
    loadable = _scan_snapshots(directory, report, scan, prefix)
    had_snapshots = (any(r.get("type") == "snapshot"
                         for r in scan.records)
                     or any(directory.glob("snapshot-*.bin")))
    if had_snapshots and not loadable:
        report.findings.append(Finding(
            prefix.rstrip("/") or ".", "directory", "inconsistent",
            "journal holds history but no snapshot is loadable — "
            "nothing to resume from", repair="unrepairable"))
    return scan, loadable


def _scan_service(directory: Path, report: IntegrityReport) -> None:
    """Service checkpoint: campaign artifacts + deltas + manifest +
    aggregate, cross-checked against the journal's window records."""
    scan, loadable = _scan_campaign_dir(directory, report, prefix="")
    windows = directory / "windows"
    # Window records carry the delta CRCs the journal committed to.
    window_records = {r["window"]: r for r in scan.records
                      if r.get("type") == "window" and "window" in r}
    start = next((r for r in scan.records
                  if r.get("type") == "phase"
                  and r.get("name") == "service_start"), None)
    on_disk: dict[int, Path] = {}
    if windows.is_dir():
        for path in sorted(windows.glob("delta-*.json")):
            try:
                index = int(path.stem.split("-")[1])
            except (IndexError, ValueError):
                report.findings.append(Finding(
                    f"windows/{path.name}", "delta", "corrupt",
                    "unparseable delta file name", repair="quarantine"))
                continue
            on_disk[index] = path
        for tmp in sorted(windows.glob("delta-*.json.tmp")):
            report.findings.append(Finding(
                f"windows/{tmp.name}", "tmp", "stale-tmp",
                "interrupted delta write", repair="sweep"))
    damaged_windows: list[int] = []
    for index, path in sorted(on_disk.items()):
        rel = f"windows/{path.name}"
        record = window_records.get(index)
        problem = _delta_problem(index, path.read_bytes(), record)
        if problem is None and record is None:
            # Crash between delta write and journal append: the next
            # live execution of this window rewrites the file anyway.
            report.findings.append(Finding(
                rel, "delta", "orphaned",
                "no journal window record references this delta "
                "(crash between delta write and journal append)",
                repair="quarantine"))
        elif problem is None:
            report.findings.append(Finding(rel, "delta", "clean"))
        elif record is None:
            report.findings.append(Finding(
                rel, "delta", "orphaned",
                f"uncommitted delta is damaged ({problem}); the window "
                "re-executes live and rewrites it", repair="quarantine"))
        else:
            repair = _delta_repair(index, scan, loadable)
            report.findings.append(Finding(
                rel, "delta", "corrupt", problem, repair=repair))
            if repair == "quarantine":
                damaged_windows.append(index)
    newest_floor = (_snapshot_floor(loadable[0], scan)
                    if loadable else None)
    for index, record in sorted(window_records.items()):
        if index in on_disk:
            continue
        rel = f"windows/{record.get('file', f'delta-{index:04d}.json')}"
        if newest_floor is not None and newest_floor <= index:
            # Resume replays this window from the newest snapshot and
            # rewrites the file byte-identically; no repair needed.
            report.findings.append(Finding(
                rel, "delta", "orphaned",
                "journal committed this window but its delta file is "
                "missing; replay regenerates it"))
        elif any(_snapshot_floor(name, scan) <= index
                 for name in loadable):
            # Only an older snapshot predates the window: roll back.
            report.findings.append(Finding(
                rel, "delta", "inconsistent",
                "journal committed this window but its delta file is "
                "missing; rolling back to a snapshot that regenerates "
                "it", repair="quarantine"))
            damaged_windows.append(index)
        else:
            report.findings.append(Finding(
                rel, "delta", "inconsistent",
                "journal committed this window but its delta file is "
                "missing and no snapshot old enough to regenerate it "
                "survives", repair="unrepairable"))
    # Rolling back past a damaged-but-regenerable window means
    # quarantining every snapshot taken after it, so recovery falls
    # through to one that replays the window afresh.
    if damaged_windows:
        rollback_to = min(damaged_windows)
        for name in loadable:
            if _snapshot_floor(name, scan) > rollback_to:
                report.findings.append(Finding(
                    name, "snapshot", "inconsistent",
                    f"postdates damaged window {rollback_to}; rolled "
                    "back so replay can regenerate the window",
                    repair="quarantine"))
    _scan_service_manifest(directory, report, scan, window_records,
                           start, loadable)
    _scan_service_aggregate(directory, report, scan, loadable)


def _delta_problem(index: int, data: bytes, record) -> str | None:
    """Why one delta's bytes cannot be trusted, or None when clean."""
    import zlib

    try:
        payload = json.loads(data)
    except ValueError:
        return "undecodable JSON"
    if not isinstance(payload, dict):
        return "not a JSON object"
    if payload.get("window") != index:
        return (f"belongs to window {payload.get('window')!r} — swapped "
                "or transplanted delta file")
    if record is not None and zlib.crc32(data) != record.get("crc"):
        return "CRC disagrees with the journal's window record"
    return None


def _delta_repair(index: int, scan: JournalScan,
                  loadable: list[str]) -> str:
    """Whether rolling back can regenerate window ``index``.

    A damaged delta is repairable iff some loadable snapshot was taken
    at or before that window started: quarantine the delta (and any
    snapshot taken after it) and replay regenerates the bytes.  The
    snapshot *floor* — the first window replay would re-emit — is
    derived from the snapshot marker's position in the journal: every
    window record after the marker is re-executed.
    """
    for name in sorted(loadable):  # oldest first: any one suffices
        if _snapshot_floor(name, scan) <= index:
            return "quarantine"
    return "unrepairable"


def _snapshot_floor(name: str, scan: JournalScan) -> int:
    """The first window a replay from snapshot ``name`` regenerates."""
    floor = 0
    for record in scan.records:
        if record.get("type") == "window":
            floor = record["window"] + 1
        elif record.get("type") == "snapshot" \
                and record.get("file") == name:
            return floor
    return floor


def _scan_service_manifest(directory: Path, report: IntegrityReport,
                           scan: JournalScan, window_records: dict,
                           start, loadable: list[str]) -> None:
    rel = "manifest.json"
    path = directory / rel
    if not path.exists():
        report.findings.append(Finding(
            rel, "manifest", "inconsistent",
            "service manifest is missing",
            repair="rebuild" if loadable else "unrepairable"))
        return
    try:
        manifest = json.loads(path.read_bytes())
        if not isinstance(manifest, dict):
            raise ValueError("not an object")
    except ValueError:
        report.findings.append(Finding(
            rel, "manifest", "corrupt", "undecodable manifest",
            repair="rebuild" if loadable else "unrepairable"))
        return
    problems = []
    if manifest.get("kind") != "service":
        problems.append(f"kind is {manifest.get('kind')!r}")
    if start is not None:
        if manifest.get("seed") != start.get("seed"):
            problems.append(
                f"seed {manifest.get('seed')!r} disagrees with the "
                f"journal's {start.get('seed')!r}")
        if manifest.get("windows") != start.get("windows"):
            problems.append(
                f"window count {manifest.get('windows')!r} disagrees "
                f"with the journal's {start.get('windows')!r}")
    completed = manifest.get("completed")
    if not isinstance(completed, list):
        problems.append("completed-window index is not a list")
    else:
        for entry in completed:
            if (not isinstance(entry, list) or len(entry) != 3):
                problems.append(f"malformed completed entry {entry!r}")
                break
            index, name, crc = entry
            record = window_records.get(index)
            if record is None:
                # The manifest claims a window the journal never
                # committed: the manifest is *ahead* of the journal,
                # which no crash ordering can produce.
                problems.append(
                    f"claims window {index} which the journal never "
                    "committed")
            elif record.get("file") != name or record.get("crc") != crc:
                problems.append(
                    f"window {index} entry disagrees with the journal")
        # Lag (journal ahead of manifest) is the normal crash window
        # between the window record append and the manifest rewrite —
        # replay regenerates the manifest, so it is not flagged.
    if problems:
        report.findings.append(Finding(
            rel, "manifest", "inconsistent", "; ".join(problems),
            repair="rebuild" if loadable else "unrepairable"))
    else:
        report.findings.append(Finding(rel, "manifest", "clean"))


def _scan_service_aggregate(directory: Path, report: IntegrityReport,
                            scan: JournalScan,
                            loadable: list[str]) -> None:
    import zlib

    rel = "aggregate.json"
    path = directory / rel
    committed = next((r for r in reversed(scan.records)
                      if r.get("type") == "aggregate"), None)
    if not path.exists():
        if committed is not None:
            # Resuming a finished service re-runs the finish stage and
            # rewrites the aggregate under replay verification.
            report.findings.append(Finding(
                rel, "aggregate", "orphaned",
                "journal committed the final aggregate but the file is "
                "missing; resume regenerates it"
                if loadable else
                "journal committed the final aggregate but the file "
                "and every snapshot are gone"))
        return
    data = path.read_bytes()
    problem = None
    try:
        payload = json.loads(data)
        if not isinstance(payload, dict) \
                or payload.get("kind") != "service-aggregate":
            problem = "not a service aggregate"
    except ValueError:
        problem = "undecodable JSON"
    if problem is None and committed is not None \
            and zlib.crc32(data) != committed.get("crc"):
        problem = "CRC disagrees with the journal's aggregate record"
    if problem is None and committed is None:
        # Crash between write_aggregate and the journal's aggregate
        # record: finishing the resumed service rewrites the file.
        report.findings.append(Finding(
            rel, "aggregate", "orphaned",
            "journal never committed this aggregate (crash between "
            "write and journal append)", repair="quarantine"))
    elif problem is not None:
        # Quarantine + resume regenerates the aggregate via the finish
        # stage, provided any snapshot survives to resume from.
        report.findings.append(Finding(
            rel, "aggregate", "corrupt", problem,
            repair="quarantine" if loadable else "unrepairable"))
    else:
        report.findings.append(Finding(rel, "aggregate", "clean"))


def _scan_parallel(directory: Path, report: IntegrityReport) -> None:
    """Parallel checkpoint: manifest + config + every shard tree."""
    shard_dirs = sorted(directory.glob("shard-*"))
    workers = _scan_parallel_manifest(directory, report, shard_dirs)
    for shard_dir in shard_dirs:
        if not shard_dir.is_dir():
            report.findings.append(Finding(
                shard_dir.name, "directory", "inconsistent",
                "shard entry is not a directory", repair="quarantine"))
            continue
        _scan_shard(shard_dir, report, prefix=shard_dir.name + "/")
    if workers is not None:
        from repro.parallel.worker import shard_dir_name

        for shard_id in range(workers):
            expected = directory / shard_dir_name(shard_id)
            if not expected.exists():
                # Normal before a shard's first append — and after a
                # wholesale quarantine; resume reruns it from scratch.
                report.findings.append(Finding(
                    expected.name, "directory", "orphaned",
                    "shard directory missing; resume reruns this "
                    "shard from scratch", repair="rerun"))


def _scan_parallel_manifest(directory: Path, report: IntegrityReport,
                            shard_dirs: list[Path]) -> int | None:
    """manifest.json + config.pkl; returns the worker count if known."""
    import pickle

    rebuildable = any((d / "journal.bin").exists() for d in shard_dirs)
    workers = None
    rel = "manifest.json"
    path = directory / rel
    if not path.exists():
        report.findings.append(Finding(
            rel, "manifest", "inconsistent",
            "parallel manifest is missing",
            repair="rebuild" if rebuildable else "unrepairable"))
    else:
        try:
            meta = json.loads(path.read_bytes())
            if not isinstance(meta, dict) \
                    or not str(meta.get("format", "")).startswith(
                        "repro.parallel.v") \
                    or not isinstance(meta.get("workers"), int):
                raise ValueError("malformed")
        except ValueError:
            report.findings.append(Finding(
                rel, "manifest", "corrupt",
                "undecodable or malformed parallel manifest",
                repair="rebuild" if rebuildable else "unrepairable"))
        else:
            workers = meta["workers"]
            if len(shard_dirs) > workers:
                report.findings.append(Finding(
                    rel, "manifest", "inconsistent",
                    f"manifest declares {workers} workers but "
                    f"{len(shard_dirs)} shard directories exist",
                    repair="unrepairable"))
            else:
                report.findings.append(Finding(rel, "manifest", "clean"))
    rel = "config.pkl"
    path = directory / rel
    if not path.exists():
        report.findings.append(Finding(
            rel, "config", "inconsistent",
            "pinned experiment config is missing",
            repair="rebuild" if _any_shard_config(shard_dirs)
            else "unrepairable"))
        return workers
    try:
        from repro.experiments.config import ExperimentConfig

        with path.open("rb") as handle:
            config = pickle.load(handle)
        if not isinstance(config, ExperimentConfig):
            raise ValueError("not an ExperimentConfig")
    except Exception as exc:
        report.findings.append(Finding(
            rel, "config", "corrupt", f"unloadable config ({exc})",
            repair="rebuild" if _any_shard_config(shard_dirs)
            else "unrepairable"))
    else:
        report.findings.append(Finding(rel, "config", "clean"))
    return workers


def _any_shard_config(shard_dirs: list[Path]):
    """A (config, num_shards) pair recovered from any shard snapshot —
    every shard pins the identical config, so any loadable snapshot can
    rebuild the campaign-level manifest and config.pkl."""
    from repro.persist.campaign import CampaignCheckpointer

    for shard_dir in shard_dirs:
        if not (shard_dir / "journal.bin").exists():
            continue
        try:
            ckpt, state, _torn = CampaignCheckpointer.recover(shard_dir)
            ckpt.close()
        except Exception:
            continue
        if state is not None and hasattr(state, "config") \
                and hasattr(state, "shard"):
            return state.config, state.shard.num_shards
    return None


def _scan_shard(shard_dir: Path, report: IntegrityReport,
                prefix: str) -> None:
    from repro.parallel.worker import (
        RESULT_FILE,
        verify_shard_result_bytes,
    )

    journal = shard_dir / "journal.bin"
    result = shard_dir / RESULT_FILE
    if not journal.exists() and not result.exists():
        report.findings.append(Finding(
            prefix.rstrip("/"), "directory", "orphaned",
            "shard directory holds no journal and no result; resume "
            "reruns this shard from scratch", repair="rerun"))
        return
    scan, loadable = _scan_campaign_dir(shard_dir, report, prefix=prefix)
    # Whole-shard damage is never fatal to the campaign: determinism
    # means a rerun-from-scratch reproduces the lost shard exactly.
    for index, finding in enumerate(report.findings):
        if finding.artifact.startswith(prefix.rstrip("/")) \
                and finding.repair == "unrepairable":
            report.findings[index] = Finding(
                finding.artifact, finding.kind, finding.status,
                finding.detail + "; shard reruns from scratch",
                repair="rerun")
    if result.exists():
        rel = prefix + RESULT_FILE
        try:
            verify_shard_result_bytes(result.read_bytes())
        except Exception as exc:
            report.findings.append(Finding(
                rel, "result", "corrupt", str(exc),
                repair="quarantine" if loadable else "rerun"))
        else:
            report.findings.append(Finding(rel, "result", "clean"))
    for tmp in sorted(shard_dir.glob("result.pkl.tmp")):
        report.findings.append(Finding(
            prefix + tmp.name, "tmp", "stale-tmp",
            "interrupted result write", repair="sweep"))


# -- repair -------------------------------------------------------------------


@dataclass(slots=True)
class RepairReport:
    """What one repair pass did."""

    directory: Path
    before: IntegrityReport
    actions: list[str] = field(default_factory=list)
    after: IntegrityReport | None = None

    @property
    def healthy(self) -> bool:
        return self.after is not None and not self.after.fatal

    def render(self) -> str:
        lines = [f"{self.directory}: {len(self.actions)} repair action(s)"]
        lines.extend("  " + action for action in self.actions)
        if self.after is not None:
            lines.append("post-repair: "
                         + ("clean" if self.after.clean else
                            f"{len(self.after.damaged)} finding(s) remain"))
        return "\n".join(lines)


class _Quarantine:
    """The quarantine/ sub-directory and its reason files.

    Quarantined files keep their name under a monotonic counter prefix
    (``0003-journal.bin``) — deterministic across runs, no timestamps —
    with a ``.reason.json`` sidecar recording why, machine-readably.
    """

    def __init__(self, root: Path) -> None:
        self.root = root / QUARANTINE_DIR
        self._counter = 0
        if self.root.exists():
            for path in self.root.iterdir():
                head = path.name.split("-", 1)[0]
                if head.isdigit():
                    self._counter = max(self._counter, int(head) + 1)

    def take(self, path: Path, rel: str, finding: Finding,
             actions: list[str]) -> None:
        """Move one file (or tree) into quarantine with its reason."""
        if not path.exists():
            return
        self.root.mkdir(parents=True, exist_ok=True)
        flat = rel.replace("/", "__")
        target = self.root / f"{self._counter:04d}-{flat}"
        reason = self.root / f"{self._counter:04d}-{flat}.reason.json"
        self._counter += 1
        shutil.move(str(path), str(target))
        reason.write_text(json.dumps({
            "artifact": rel,
            "kind": finding.kind,
            "status": finding.status,
            "detail": finding.detail,
            "quarantined_as": target.name,
        }, sort_keys=True, indent=2) + "\n")
        actions.append(f"quarantined {rel} ({finding.status}: "
                       f"{finding.detail})")


def repair_checkpoint(directory: str | Path) -> RepairReport:
    """Repair a damaged checkpoint in place.

    Policy per finding, in scan order:

    * ``truncate`` — cut a journal's torn tail at the last valid frame;
    * ``sweep`` — delete ``.tmp`` leftovers;
    * ``quarantine`` — move the damaged artifact to ``quarantine/``
      (corrupt journals additionally get their valid prefix rewritten
      in place, so the history that *did* verify survives);
    * ``rebuild`` — regenerate a manifest/config from artifacts that
      still verify;
    * ``rerun`` — quarantine a whole shard tree so resume reruns it;
    * ``unrepairable`` — raise :class:`UnrepairableError` (CLI exit 2).

    Repairs cascade (quarantining a snapshot can orphan a marker), so
    the engine rescans and repeats until the directory reaches a fixed
    point, then verifies no fatal finding remains.
    """
    directory = Path(directory)
    before = scan_checkpoint(directory)
    report = RepairReport(directory=directory, before=before)
    current = before
    for _round in range(8):
        if current.unrepairable:
            raise UnrepairableError(_unrepairable_message(current))
        if not current.damaged:
            break
        progressed = _apply_repairs(directory, current, report.actions)
        current = scan_checkpoint(directory)
        if not progressed:
            break
    report.after = current
    if current.unrepairable:
        raise UnrepairableError(_unrepairable_message(current))
    if current.fatal:
        raise UnrepairableError(_unrepairable_message(current))
    return report


def _unrepairable_message(report: IntegrityReport) -> str:
    worst = (report.unrepairable or report.fatal)[0]
    return (f"{report.directory}: no consistent state survives — "
            f"{worst.artifact}: {worst.detail or worst.status}")


def _apply_repairs(directory: Path, report: IntegrityReport,
                   actions: list[str]) -> bool:
    quarantine = _Quarantine(directory)
    progressed = False
    for finding in report.findings:
        path = directory / finding.artifact
        if finding.repair == "truncate":
            records, torn = Journal.recover(path)
            if torn:
                actions.append(
                    f"truncated torn tail of {finding.artifact} "
                    f"({len(records)} record(s) kept)")
                progressed = True
        elif finding.repair == "sweep":
            if path.exists():
                path.unlink()
                actions.append(f"swept stale temporary {finding.artifact}")
                progressed = True
        elif finding.repair == "quarantine":
            if finding.kind == "journal":
                progressed |= _repair_journal(path, finding, quarantine,
                                              actions)
            elif path.exists():
                quarantine.take(path, finding.artifact, finding, actions)
                progressed = True
        elif finding.repair == "rerun":
            shard_dir = directory / finding.artifact.split("/")[0]
            if shard_dir.exists() and shard_dir.is_dir():
                quarantine.take(shard_dir, shard_dir.name, finding,
                                actions)
                actions.append(
                    f"shard {shard_dir.name} will rerun from scratch "
                    "on resume")
                progressed = True
        elif finding.repair == "rebuild":
            progressed |= _rebuild(directory, report, finding, actions)
    return progressed


def _repair_journal(path: Path, finding: Finding,
                    quarantine: _Quarantine, actions: list[str]) -> bool:
    """Quarantine a corrupt journal, then rewrite its valid prefix.

    The frames that verified under the CRC chain are real history; the
    rewrite turns them back into a clean journal so resume can roll
    forward from the newest snapshot at or before the damage point.
    Snapshot markers past the rewritten history now reference state the
    journal no longer vouches for — the rescan flags those snapshots
    as orphaned and the next round quarantines them, completing the
    rollback to the last mutually consistent boundary.
    """
    if not path.exists():
        return False
    scan = Journal.scan(path)
    rel = str(path.relative_to(quarantine.root.parent))
    quarantine.take(path, rel, finding, actions)
    rewrite(path, scan.records)
    actions.append(
        f"rebuilt {rel} from its valid prefix "
        f"({len(scan.records)} record(s) kept, "
        f"{scan.salvageable} unverifiable record(s) discarded)")
    return True


def _rebuild(directory: Path, report: IntegrityReport, finding: Finding,
             actions: list[str]) -> bool:
    """Regenerate a manifest/config from artifacts that still verify."""
    if report.checkpoint_kind == "service":
        return _rebuild_service_manifest(directory, finding, actions)
    if report.checkpoint_kind == "parallel":
        return _rebuild_parallel_meta(directory, finding, actions)
    return False


def _rebuild_service_manifest(directory: Path, finding: Finding,
                              actions: list[str]) -> bool:
    """Rewrite manifest.json from the newest loadable service state.

    The snapshot's ``delta_index`` is exactly what the manifest
    mirrors; replay rewrites the manifest again on the next window
    boundary, so a rebuild only has to restore a *consistent* state,
    not the latest one.
    """
    from repro.persist.campaign import CampaignCheckpointer
    from repro.service.supervisor import (
        ServiceState,
        _write_service_manifest,
    )

    try:
        ckpt, state, _torn = CampaignCheckpointer.recover(directory)
        ckpt.close()
    except Exception:
        return False
    if not isinstance(state, ServiceState):
        return False
    stale = (directory / "manifest.json")
    if stale.exists():
        quarantine = _Quarantine(directory)
        quarantine.take(stale, "manifest.json", finding, actions)
    _write_service_manifest(state, directory)
    actions.append(
        f"rebuilt manifest.json from snapshot state "
        f"({len(state.delta_index)} completed window(s))")
    return True


def _rebuild_parallel_meta(directory: Path, finding: Finding,
                           actions: list[str]) -> bool:
    """Rewrite manifest.json / config.pkl from any shard's snapshot."""
    import pickle

    recovered = _any_shard_config(sorted(directory.glob("shard-*")))
    if recovered is None:
        return False
    config, num_shards = recovered
    quarantine = _Quarantine(directory)
    if finding.kind == "manifest":
        stale = directory / "manifest.json"
        if stale.exists():
            quarantine.take(stale, "manifest.json", finding, actions)
        (directory / "manifest.json").write_text(json.dumps(
            {"format": "repro.parallel.v2", "workers": num_shards,
             "seed": config.seed}, indent=2) + "\n")
        actions.append(
            f"rebuilt manifest.json from shard snapshot "
            f"({num_shards} workers, seed {config.seed})")
    else:
        stale = directory / "config.pkl"
        if stale.exists():
            quarantine.take(stale, "config.pkl", finding, actions)
        with (directory / "config.pkl").open("wb") as handle:
            pickle.dump(config, handle)
        actions.append("rebuilt config.pkl from shard snapshot")
    return True


# -- resume preflight ---------------------------------------------------------


def assert_resumable(directory: str | Path) -> IntegrityReport:
    """The pre-flight scan ``repro resume`` / ``repro serve --resume``
    run before touching a checkpoint.

    Benign crash residue — torn tails, stale temporaries, orphaned
    snapshots — passes: the resume path already heals those.  Fatal
    findings (mid-file corruption, cross-reference breaks) raise
    :class:`IntegrityError` pointing at ``repro fsck --repair``.
    """
    report = scan_checkpoint(directory)
    fatal = report.fatal
    if fatal:
        worst = fatal[0]
        raise IntegrityError(
            f"{directory} failed the integrity pre-flight — "
            f"{worst.artifact}: {worst.detail or worst.status} "
            f"({len(fatal)} fatal finding(s) total); run "
            "`repro fsck --repair --checkpoint-dir "
            f"{directory}` to quarantine damage and roll back to the "
            "last consistent state"
        )
    return report
