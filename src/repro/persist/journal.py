"""Append-only, checksummed write-ahead journal.

The journal is the durability primitive under crash-safe campaigns
(:mod:`repro.persist.campaign`): every externally observable event of a
measurement run — probe outcomes, breaker transitions, slot/clock
ticks, phase boundaries, snapshot markers — is appended as one framed
record *before* the campaign moves on.  After a crash, replaying the
journal suffix against a re-execution from the latest snapshot proves
the resumed run walks the same path the dead one did.

Wire format (all integers big-endian)::

    file   := MAGIC record*
    MAGIC  := b"RPJ2"
    record := length:u32 crc32:u32 payload[length]

``payload`` is compact, sort-keyed JSON (a single object).  Frame CRCs
are **chained**: record *i*'s stored CRC is ``crc32(payload_i,
crc_{i-1})`` with ``crc_0 = crc32(MAGIC)``, so a record only validates
in its exact position — a duplicated, reordered, or transplanted frame
fails the chain even though its bytes are internally consistent.

Damage classification (:meth:`Journal.scan`) distinguishes two cases:

* **torn tail** — the valid prefix is followed only by bytes that
  cannot be parsed as any frame: the classic power-cut failure.
  Recovery truncates it and the resumed run regenerates the lost
  record deterministically.
* **mid-file corruption** — parseable frames survive *past* the
  damage: bit rot inside the history, not an interrupted append.
  Truncating here would silently discard valid records, so
  :meth:`Journal.recover` refuses with :class:`JournalCorruption`;
  ``repro fsck --repair`` quarantines the damaged file and rebuilds
  the valid prefix (:mod:`repro.persist.integrity`).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

MAGIC = b"RPJ2"
_FRAME = struct.Struct("!II")

#: chain seed for the first record's CRC.
CHAIN_SEED = zlib.crc32(MAGIC)

#: upper bound a resync probe accepts as a plausible frame length; far
#: above any real record, far below the bogus lengths bit flips yield.
_RESYNC_MAX_LENGTH = 1 << 24


class JournalError(RuntimeError):
    """Raised on unusable journal files (bad magic, not a journal)."""


class JournalCorruption(JournalError):
    """Mid-file journal damage that recovery must not auto-truncate:
    valid records survive past the damaged region, so truncating would
    silently discard history.  Repair goes through ``repro fsck``."""


def encode_record(record: dict, chain: int = CHAIN_SEED) -> bytes:
    """Frame one record: length + chained CRC32 + canonical JSON.

    ``chain`` is the previous frame's stored CRC (:data:`CHAIN_SEED`
    for the first record after the magic).
    """
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload, chain)) + payload


def canonical(record: dict) -> str:
    """Canonical JSON text of a record, used for replay comparison.

    Round-trips through JSON first so in-memory shapes JSON cannot
    distinguish (tuple vs list) compare equal to their decoded form.
    """
    return json.dumps(json.loads(json.dumps(record)), sort_keys=True,
                      separators=(",", ":"))


@dataclass(frozen=True, slots=True)
class JournalScan:
    """What one pass over a journal file established.

    ``damage`` is ``"clean"``, ``"torn"`` (invalid tail, nothing
    parseable after it) or ``"corrupt"`` (parseable frames survive past
    the damage — or the magic itself is wrong).  ``valid_length`` is
    the byte offset just past the last chain-valid record;
    ``chain`` is the CRC chain value there, i.e. what the next append
    must seed with.  ``salvageable`` counts plausible records found
    past a damaged region (they are *not* trustworthy — resync cannot
    verify the chain — but their presence proves the damage is
    mid-file).
    """

    records: list[dict]
    valid_length: int
    chain: int
    damage: str
    detail: str = ""
    salvageable: int = 0

    @property
    def clean(self) -> bool:
        return self.damage == "clean"


def _parse_frames(data: bytes, start: int) -> tuple[list[dict], int, int,
                                                    str]:
    """Walk chained frames; returns (records, end, chain, fail-reason)."""
    records: list[dict] = []
    pos = start
    chain = CHAIN_SEED
    while pos < len(data):
        if pos + _FRAME.size > len(data):
            return records, pos, chain, "truncated frame header"
        length, crc = _FRAME.unpack_from(data, pos)
        body = pos + _FRAME.size
        if length > len(data) - body:
            return records, pos, chain, (
                f"declared length {length} overruns the file")
        payload = data[body:body + length]
        if zlib.crc32(payload, chain) != crc:
            return records, pos, chain, "chained CRC mismatch"
        try:
            record = json.loads(payload)
        except ValueError:
            return records, pos, chain, "undecodable payload"
        if not isinstance(record, dict):
            return records, pos, chain, "payload is not an object"
        records.append(record)
        chain = crc
        pos = body + length
    return records, pos, chain, ""


def _resync(data: bytes, start: int) -> int:
    """Count plausible frames past a damaged region.

    The chain value is unknowable past the damage, so this validates
    structure only: a sane length field followed by a payload that
    decodes to a JSON object.  Any hit proves bytes after the damage
    still hold records — the mid-file-corruption signature.
    """
    best = 0
    for offset in range(start, len(data) - _FRAME.size):
        length, _crc = _FRAME.unpack_from(data, offset)
        if not 0 < length <= _RESYNC_MAX_LENGTH:
            continue
        body = offset + _FRAME.size
        if length > len(data) - body:
            continue
        payload = data[body:body + length]
        if not payload.startswith(b"{"):
            continue
        try:
            record = json.loads(payload)
        except ValueError:
            continue
        if not isinstance(record, dict):
            continue
        # Count how many consecutive plausible frames follow.
        count, pos = 1, body + length
        while pos + _FRAME.size <= len(data):
            length, _crc = _FRAME.unpack_from(data, pos)
            body = pos + _FRAME.size
            if not 0 < length <= len(data) - body:
                break
            try:
                record = json.loads(data[body:body + length])
            except ValueError:
                break
            if not isinstance(record, dict):
                break
            count += 1
            pos = body + length
        best = max(best, count)
        break
    return best


class Journal:
    """An append-only journal file.

    The file handle opens lazily on the first append, so a `Journal`
    can be constructed against a path that recovery is about to
    truncate.  ``fsync=True`` makes every append durable against OS
    crashes at a heavy performance cost — including fsyncing the
    parent directory after the file itself is first created, so the
    journal's *existence* survives an OS crash too; the default only
    flushes to the OS (durable against *process* death, the failure
    the simulator injects).
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fh = None
        self._chain = CHAIN_SEED

    def _open(self):
        if self._fh is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            if not fresh:
                # Never append onto an arbitrary or damaged file: the
                # header must check out and the existing history must
                # be chain-valid to the end, or the appended frames
                # would be unreadable garbage.
                scan = self.scan(self.path)
                if not scan.clean:
                    raise JournalError(
                        f"{self.path} has {scan.damage} damage "
                        f"({scan.detail}); recover it before appending")
                self._chain = scan.chain
            self._fh = open(self.path, "ab")
            if fresh:
                self._chain = CHAIN_SEED
                self._fh.write(MAGIC)
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
                    _fsync_directory(self.path.parent)
        return self._fh

    def append(self, record: dict) -> int:
        """Durably append one record; returns the frame size in bytes
        (telemetry counts journal write volume from it)."""
        fh = self._open()
        frame = encode_record(record, self._chain)
        fh.write(frame)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self._chain = _FRAME.unpack_from(frame)[1]
        return len(frame)

    def append_torn(self, record: dict, keep_fraction: float = 0.5) -> None:
        """Write only a prefix of the record's frame (crash injection).

        Models a process killed mid-``write``: the frame header lands
        but the payload is cut short, which recovery must detect via
        the length/CRC check and truncate.
        """
        frame = encode_record(record, self._chain)
        cut = max(_FRAME.size + 1, int(len(frame) * keep_fraction))
        fh = self._open()
        fh.write(frame[:min(cut, len(frame) - 1)])
        fh.flush()

    def close(self) -> None:
        """Close the underlying file handle (if ever opened)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -----------------------------------------------------------

    @classmethod
    def scan(cls, path: str | Path) -> JournalScan:
        """Classify a journal file without modifying it.

        A wrong magic reads as ``corrupt`` with the frames salvaged
        from offset 4 (the chain seed is a constant, so frames remain
        verifiable even when the magic bytes themselves rotted) —
        ``valid_length`` is 0 in that case because the prefix cannot
        be kept in place.
        """
        path = Path(path)
        if not path.exists():
            return JournalScan([], 0, CHAIN_SEED, "clean", "missing file")
        data = path.read_bytes()
        if not data:
            return JournalScan([], 0, CHAIN_SEED, "clean", "empty file")
        if data[:len(MAGIC)] != MAGIC:
            records, _end, chain, reason = _parse_frames(data, len(MAGIC))
            return JournalScan(
                records, 0, chain, "corrupt",
                f"bad magic {data[:len(MAGIC)]!r}"
                + (f"; {len(records)} records salvageable"
                   if records else ""),
                salvageable=len(records))
        records, pos, chain, reason = _parse_frames(data, len(MAGIC))
        if not reason:
            return JournalScan(records, pos, chain, "clean")
        salvageable = _resync(data, pos + 1)
        if salvageable:
            return JournalScan(
                records, pos, chain, "corrupt",
                f"{reason} at byte {pos} (record #{len(records) + 1}); "
                f"{salvageable} record(s) survive past the damage",
                salvageable=salvageable)
        return JournalScan(
            records, pos, chain, "torn",
            f"{reason} at byte {pos} (record #{len(records) + 1}); "
            "nothing parseable follows")

    @classmethod
    def read(cls, path: str | Path) -> tuple[list[dict], int, bool]:
        """Scan a journal; returns (records, valid_length, damaged).

        ``valid_length`` is the byte offset just past the last valid
        record; the final flag reports whether trailing bytes past it
        had to be ignored (truncated frame, CRC mismatch, or
        undecodable payload).  A missing or empty file reads as zero
        records; a wrong magic raises :class:`JournalError`.
        """
        path = Path(path)
        if path.exists():
            data = path.read_bytes()
            if data and data[:len(MAGIC)] != MAGIC:
                raise JournalError(f"{path} is not a journal (bad magic)")
        scan = cls.scan(path)
        return scan.records, scan.valid_length, not scan.clean

    @classmethod
    def recover(cls, path: str | Path) -> tuple[list[dict], bool]:
        """Read a journal and truncate a *torn tail* in place.

        Returns (valid records, whether a torn tail was discarded).
        After recovery the file ends exactly at the last valid record,
        so subsequent appends continue the valid history.

        Mid-file corruption — valid frames surviving past the damage —
        raises :class:`JournalCorruption` instead of truncating: that
        history is real, and silently resuming a shortened past is
        exactly the failure a measurement reproduction cannot afford.
        ``repro fsck --repair`` handles that case.
        """
        path = Path(path)
        if path.exists():
            data = path.read_bytes()
            if data and data[:len(MAGIC)] != MAGIC:
                raise JournalError(f"{path} is not a journal (bad magic)")
        scan = cls.scan(path)
        if scan.damage == "corrupt":
            raise JournalCorruption(
                f"{path} is corrupt mid-file ({scan.detail}); refusing "
                "to truncate valid history — run `repro fsck --repair`")
        if scan.damage == "torn":
            with open(path, "r+b") as fh:
                fh.truncate(scan.valid_length)
        return scan.records, not scan.clean


def rewrite(path: str | Path, records: list[dict],
            fsync: bool = False) -> None:
    """Atomically rewrite a journal to hold exactly ``records``.

    The repair primitive: re-frames the records with a fresh chain and
    replaces the file, so a quarantined journal's valid prefix becomes
    a clean journal whose bytes match what a healthy run would have
    written.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    chain = CHAIN_SEED
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        for record in records:
            frame = encode_record(record, chain)
            fh.write(frame)
            chain = _FRAME.unpack_from(frame)[1]
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so renames/creates inside it survive OS crash."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
