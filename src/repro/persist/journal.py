"""Append-only, checksummed write-ahead journal.

The journal is the durability primitive under crash-safe campaigns
(:mod:`repro.persist.campaign`): every externally observable event of a
measurement run — probe outcomes, breaker transitions, slot/clock
ticks, phase boundaries, snapshot markers — is appended as one framed
record *before* the campaign moves on.  After a crash, replaying the
journal suffix against a re-execution from the latest snapshot proves
the resumed run walks the same path the dead one did.

Wire format (all integers big-endian)::

    file   := MAGIC record*
    MAGIC  := b"RPJ1"
    record := length:u32 crc32:u32 payload[length]

``payload`` is compact, sort-keyed JSON (a single object).  A record is
valid only if its full frame is present *and* the CRC matches; recovery
stops at the first invalid frame and truncates the file there, so a
torn final write (the classic power-cut failure) is detected and
discarded instead of being silently replayed.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

MAGIC = b"RPJ1"
_FRAME = struct.Struct("!II")


class JournalError(RuntimeError):
    """Raised on unusable journal files (bad magic, not a journal)."""


def encode_record(record: dict) -> bytes:
    """Frame one record: length + CRC32 + canonical JSON payload."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def canonical(record: dict) -> str:
    """Canonical JSON text of a record, used for replay comparison.

    Round-trips through JSON first so in-memory shapes JSON cannot
    distinguish (tuple vs list) compare equal to their decoded form.
    """
    return json.dumps(json.loads(json.dumps(record)), sort_keys=True,
                      separators=(",", ":"))


class Journal:
    """An append-only journal file.

    The file handle opens lazily on the first append, so a `Journal`
    can be constructed against a path that recovery is about to
    truncate.  ``fsync=True`` makes every append durable against OS
    crashes at a heavy performance cost; the default only flushes to
    the OS (durable against *process* death, the failure the simulator
    injects).
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fh = None

    def _open(self):
        if self._fh is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "ab")
            if fresh:
                self._fh.write(MAGIC)
                self._fh.flush()
        return self._fh

    def append(self, record: dict) -> None:
        """Durably append one record."""
        fh = self._open()
        fh.write(encode_record(record))
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())

    def append_torn(self, record: dict, keep_fraction: float = 0.5) -> None:
        """Write only a prefix of the record's frame (crash injection).

        Models a process killed mid-``write``: the frame header lands
        but the payload is cut short, which recovery must detect via
        the length/CRC check and truncate.
        """
        frame = encode_record(record)
        cut = max(_FRAME.size + 1, int(len(frame) * keep_fraction))
        fh = self._open()
        fh.write(frame[:min(cut, len(frame) - 1)])
        fh.flush()

    def close(self) -> None:
        """Close the underlying file handle (if ever opened)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -----------------------------------------------------------

    @classmethod
    def read(cls, path: str | Path) -> tuple[list[dict], int, bool]:
        """Scan a journal; returns (records, valid_length, torn).

        ``valid_length`` is the byte offset just past the last valid
        record; ``torn`` reports whether trailing bytes past it had to
        be ignored (truncated frame, CRC mismatch, or undecodable
        payload).  A missing or empty file reads as zero records.
        """
        path = Path(path)
        if not path.exists():
            return [], 0, False
        data = path.read_bytes()
        if not data:
            return [], 0, False
        if data[:len(MAGIC)] != MAGIC:
            raise JournalError(f"{path} is not a journal (bad magic)")
        records: list[dict] = []
        pos = len(MAGIC)
        torn = False
        while pos < len(data):
            if pos + _FRAME.size > len(data):
                torn = True
                break
            length, crc = _FRAME.unpack_from(data, pos)
            start = pos + _FRAME.size
            if length > len(data) - start:
                torn = True
                break
            payload = data[start:start + length]
            if zlib.crc32(payload) != crc:
                torn = True
                break
            try:
                record = json.loads(payload)
            except ValueError:
                torn = True
                break
            if not isinstance(record, dict):
                torn = True
                break
            records.append(record)
            pos = start + length
        return records, pos, torn

    @classmethod
    def recover(cls, path: str | Path) -> tuple[list[dict], bool]:
        """Read a journal and truncate any torn tail in place.

        Returns (valid records, whether a torn tail was discarded).
        After recovery the file ends exactly at the last valid record,
        so subsequent appends continue the valid history.
        """
        records, valid_length, torn = cls.read(path)
        if torn:
            with open(path, "r+b") as fh:
                fh.truncate(valid_length)
        return records, torn
