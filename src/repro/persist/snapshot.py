"""Checksummed, atomically written state snapshots.

A snapshot is a full pickle of the campaign state — world (clock, cache
contents, RNG streams, fault injector), pipeline loop state, partial
results — taken at a consistent boundary.  Resuming loads the newest
valid snapshot and replays the journal suffix on top
(:mod:`repro.persist.campaign`).

Snapshots are written to a temporary file and ``os.replace``d into
place, so a crash mid-write can never clobber the previous snapshot.
Each file carries a CRC over the pickle payload **keyed by the file's
own name** (the CRC chain seeds with ``crc32(name)``), so a snapshot's
bytes only validate under the name they were written as — two swapped
or renamed snapshot files are detected as corrupt instead of silently
loading the wrong state.  A corrupt snapshot is rejected at load time
(``SnapshotError``) and recovery falls back to the previous one.

File format: ``b"RPS2"`` + ``length:u32`` + ``crc32:u32`` + payload.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path

MAGIC = b"RPS2"
_HEADER = struct.Struct("!II")


class SnapshotError(RuntimeError):
    """Raised when a snapshot file is missing, corrupt, or unreadable."""


def _name_keyed_crc(name: str, payload: bytes) -> int:
    """CRC over the payload, seeded by the snapshot's file name."""
    return zlib.crc32(payload, zlib.crc32(name.encode("utf-8")))


def verify_bytes(name: str, data: bytes) -> bytes:
    """Validate one snapshot's raw bytes; returns the pickle payload.

    Raises :class:`SnapshotError` on a bad header, a payload shorter
    *or longer* than declared (trailing garbage is corruption, not
    slack), or a CRC that does not match under this file name.
    """
    header_end = len(MAGIC) + _HEADER.size
    if len(data) < header_end or data[:len(MAGIC)] != MAGIC:
        raise SnapshotError(f"snapshot {name} has a bad header")
    length, crc = _HEADER.unpack_from(data, len(MAGIC))
    if len(data) != header_end + length:
        raise SnapshotError(
            f"snapshot {name} is corrupt: declares {length} payload "
            f"bytes but carries {len(data) - header_end}")
    payload = data[header_end:]
    if _name_keyed_crc(name, payload) != crc:
        raise SnapshotError(
            f"snapshot {name} is corrupt (CRC mismatch under its own "
            "file name — bit rot, or a swapped/renamed snapshot)")
    return payload


class SnapshotStore:
    """Manages the numbered snapshot files inside a checkpoint dir.

    ``fsync=True`` additionally fsyncs the renamed file and its parent
    directory after every ``os.replace``, so a just-saved snapshot
    survives an OS crash, not merely process death.
    """

    def __init__(self, directory: str | Path, keep: int = 2,
                 fsync: bool = False) -> None:
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.keep = keep
        self.fsync = fsync

    def _path(self, name: str) -> Path:
        return self.directory / name

    def save(self, state: object, seq: int, before_replace=None) -> str:
        """Atomically write ``state`` as snapshot number ``seq``.

        ``seq`` must be strictly increasing across the campaign (the
        journal append counter is a natural source); returns the file
        name for the journal's snapshot marker.  ``before_replace``,
        when given, runs after the ``.tmp`` file is complete but before
        the atomic rename — the crash-injection hook exercising the
        stale-temporary window that :meth:`sweep_stale_tmp` cleans.
        """
        name = f"snapshot-{seq:010d}.bin"
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = self._path(name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(_HEADER.pack(len(payload),
                                  _name_keyed_crc(name, payload)))
            fh.write(payload)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        if before_replace is not None:
            before_replace()
        tmp.replace(self._path(name))
        if self.fsync:
            _fsync_directory(self.directory)
        return name

    def load(self, name: str) -> object:
        """Load and verify one snapshot by file name."""
        path = self._path(name)
        if not path.exists():
            raise SnapshotError(f"snapshot {name} is missing")
        payload = verify_bytes(name, path.read_bytes())
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise SnapshotError(f"snapshot {name} failed to unpickle") from exc

    def sweep_stale_tmp(self) -> list[str]:
        """Delete stray ``.tmp`` files from interrupted snapshot writes.

        A crash between writing ``snapshot.tmp`` and the atomic rename
        leaves a complete-looking temporary that no journal marker
        references; it must never shadow a real snapshot, so recovery
        sweeps (and reports) it instead of silently ignoring it.
        """
        removed: list[str] = []
        for tmp in sorted(self.directory.glob("snapshot-*.bin.tmp")):
            tmp.unlink()
            removed.append(tmp.name)
        return removed

    def prune(self) -> list[str]:
        """Delete all but the newest ``keep`` snapshots; returns what
        was removed.  Stray ``.tmp`` files from interrupted writes are
        always swept."""
        removed = self.sweep_stale_tmp()
        files = sorted(self.directory.glob("snapshot-*.bin"))
        for path in files[:-self.keep]:
            path.unlink()
            removed.append(path.name)
        return removed


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so renames inside it survive OS crash."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
