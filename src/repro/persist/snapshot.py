"""Checksummed, atomically written state snapshots.

A snapshot is a full pickle of the campaign state — world (clock, cache
contents, RNG streams, fault injector), pipeline loop state, partial
results — taken at a consistent boundary.  Resuming loads the newest
valid snapshot and replays the journal suffix on top
(:mod:`repro.persist.campaign`).

Snapshots are written to a temporary file and ``os.replace``d into
place, so a crash mid-write can never clobber the previous snapshot.
Each file carries a CRC over the pickle payload; a corrupt snapshot is
rejected at load time (``SnapshotError``) and recovery falls back to
the previous one.

File format: ``b"RPS1"`` + ``length:u32`` + ``crc32:u32`` + payload.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from pathlib import Path

MAGIC = b"RPS1"
_HEADER = struct.Struct("!II")


class SnapshotError(RuntimeError):
    """Raised when a snapshot file is missing, corrupt, or unreadable."""


class SnapshotStore:
    """Manages the numbered snapshot files inside a checkpoint dir."""

    def __init__(self, directory: str | Path, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.keep = keep

    def _path(self, name: str) -> Path:
        return self.directory / name

    def save(self, state: object, seq: int, before_replace=None) -> str:
        """Atomically write ``state`` as snapshot number ``seq``.

        ``seq`` must be strictly increasing across the campaign (the
        journal append counter is a natural source); returns the file
        name for the journal's snapshot marker.  ``before_replace``,
        when given, runs after the ``.tmp`` file is complete but before
        the atomic rename — the crash-injection hook exercising the
        stale-temporary window that :meth:`sweep_stale_tmp` cleans.
        """
        name = f"snapshot-{seq:010d}.bin"
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = self._path(name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
            fh.write(payload)
            fh.flush()
        if before_replace is not None:
            before_replace()
        tmp.replace(self._path(name))
        return name

    def load(self, name: str) -> object:
        """Load and verify one snapshot by file name."""
        path = self._path(name)
        if not path.exists():
            raise SnapshotError(f"snapshot {name} is missing")
        data = path.read_bytes()
        header_end = len(MAGIC) + _HEADER.size
        if len(data) < header_end or data[:len(MAGIC)] != MAGIC:
            raise SnapshotError(f"snapshot {name} has a bad header")
        length, crc = _HEADER.unpack_from(data, len(MAGIC))
        payload = data[header_end:header_end + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise SnapshotError(f"snapshot {name} is corrupt")
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise SnapshotError(f"snapshot {name} failed to unpickle") from exc

    def sweep_stale_tmp(self) -> list[str]:
        """Delete stray ``.tmp`` files from interrupted snapshot writes.

        A crash between writing ``snapshot.tmp`` and the atomic rename
        leaves a complete-looking temporary that no journal marker
        references; it must never shadow a real snapshot, so recovery
        sweeps (and reports) it instead of silently ignoring it.
        """
        removed: list[str] = []
        for tmp in sorted(self.directory.glob("snapshot-*.bin.tmp")):
            tmp.unlink()
            removed.append(tmp.name)
        return removed

    def prune(self) -> list[str]:
        """Delete all but the newest ``keep`` snapshots; returns what
        was removed.  Stray ``.tmp`` files from interrupted writes are
        always swept."""
        removed = self.sweep_stale_tmp()
        files = sorted(self.directory.glob("snapshot-*.bin"))
        for path in files[:-self.keep]:
            path.unlink()
            removed.append(path.name)
        return removed
