"""Durable progress for long campaigns: write-ahead journal,
checksummed snapshots, the crash-safe campaign driver, and the
checkpoint-integrity scanner/repair engine behind ``repro fsck``."""

from repro.persist.journal import (
    Journal,
    JournalCorruption,
    JournalError,
    canonical,
    encode_record,
)
from repro.persist.snapshot import SnapshotError, SnapshotStore
from repro.persist.campaign import (
    CampaignCheckpointer,
    CampaignState,
    CheckpointConfig,
    CheckpointError,
    ReplayDivergence,
    resume_campaign,
    run_campaign,
)
from repro.persist.integrity import (
    Finding,
    IntegrityError,
    IntegrityReport,
    RepairReport,
    UnrepairableError,
    assert_resumable,
    detect_checkpoint_kind,
    repair_checkpoint,
    scan_checkpoint,
)

__all__ = [
    "CampaignCheckpointer",
    "CampaignState",
    "CheckpointConfig",
    "CheckpointError",
    "Finding",
    "IntegrityError",
    "IntegrityReport",
    "Journal",
    "JournalCorruption",
    "JournalError",
    "RepairReport",
    "ReplayDivergence",
    "SnapshotError",
    "SnapshotStore",
    "UnrepairableError",
    "assert_resumable",
    "canonical",
    "detect_checkpoint_kind",
    "encode_record",
    "repair_checkpoint",
    "resume_campaign",
    "run_campaign",
    "scan_checkpoint",
]
