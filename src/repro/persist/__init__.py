"""Durable progress for long campaigns: write-ahead journal,
checksummed snapshots, and the crash-safe campaign driver."""

from repro.persist.journal import Journal, JournalError, canonical, encode_record
from repro.persist.snapshot import SnapshotError, SnapshotStore
from repro.persist.campaign import (
    CampaignCheckpointer,
    CampaignState,
    CheckpointConfig,
    CheckpointError,
    ReplayDivergence,
    resume_campaign,
    run_campaign,
)

__all__ = [
    "CampaignCheckpointer",
    "CampaignState",
    "CheckpointConfig",
    "CheckpointError",
    "Journal",
    "JournalError",
    "ReplayDivergence",
    "SnapshotError",
    "SnapshotStore",
    "canonical",
    "encode_record",
    "resume_campaign",
    "run_campaign",
]
