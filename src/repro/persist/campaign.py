"""Crash-safe, resumable measurement campaigns.

The paper's probing campaign runs for weeks (§3.1, §4); process death
must not discard progress or double-count probes.  This module ties the
write-ahead :class:`~repro.persist.journal.Journal` and the
:class:`~repro.persist.snapshot.SnapshotStore` into a campaign driver:

* ``run_campaign`` executes the full §4 experiment while journaling
  every observable event (probe batches, breaker transitions, slot
  clock ticks, phase boundaries) and snapshotting the complete
  deterministic state — sim clock, every seeded RNG stream, cache
  contents, accumulated results — at phase boundaries and every
  ``snapshot_every_slots`` probing slots;
* ``resume_campaign`` recovers the journal (truncating a torn tail),
  loads the newest intact snapshot, and re-executes from it.  Because
  the snapshot captures *all* state the run depends on, re-execution is
  bit-deterministic; every record it regenerates is verified against
  the journal suffix (``ReplayDivergence`` on mismatch), and once the
  suffix is exhausted the campaign continues live.  The resumed run
  provably reaches the identical :class:`CacheProbingResult` and
  :class:`DnsLogsResult` an uninterrupted run produces.

Crash injection for tests lives in :mod:`repro.sim.faults`
(``FaultConfig.crash_after_appends``): the checkpointer consults the
world's injector before each journal append and dies with
:class:`~repro.sim.faults.SimulatedCrash` — optionally mid-write, to
exercise torn-record recovery.  Resume does *not* re-arm crash
injection unless explicitly asked (a restarted supervisor is a new
process).
"""

from __future__ import annotations

import logging
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import runtime as obs_runtime
from repro.persist.journal import Journal, canonical
from repro.persist.journal import MAGIC as JOURNAL_MAGIC
from repro.persist.snapshot import SnapshotError, SnapshotStore
from repro.sim.faults import FaultInjector
from repro.world.apnic import ApnicEstimator
from repro.world.builder import World, build_world
from repro.world.vantage import VantagePoint, deploy_vantage_points
from repro.core.cache_probing import CacheProbingPipeline, CacheProbingResult
from repro.core.datasets import build_all_datasets
from repro.core.dns_logs import DnsLogsPipeline, DnsLogsResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult


logger = logging.getLogger("repro.persist")

#: shared no-op context for un-instrumented checkpointers.
_NULL_CONTEXT = nullcontext()


class CheckpointError(RuntimeError):
    """Raised on unusable checkpoint directories or resume failures."""


class ReplayDivergence(CheckpointError):
    """A resumed run regenerated a record that differs from the journal
    — the snapshot and journal disagree, or determinism was broken."""


@dataclass(frozen=True, slots=True)
class CheckpointConfig:
    """Durability knobs for a checkpointed campaign."""

    #: snapshot cadence during the probing loop, in slots.
    snapshot_every_slots: int = 8
    #: how many snapshot generations to retain on disk.
    keep_snapshots: int = 2
    #: fsync every journal append (safe against OS crashes, slow).
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.snapshot_every_slots < 1:
            raise ValueError("snapshot_every_slots must be at least 1")
        if self.keep_snapshots < 1:
            raise ValueError("keep_snapshots must be at least 1")


@dataclass(slots=True)
class CampaignState:
    """Everything a snapshot must capture to resume the campaign.

    One pickle graph: the pipeline references the same ``world`` (and
    through it the same clock, RNG streams and fault injector), so
    shared identity survives the snapshot round-trip.
    """

    config: ExperimentConfig
    stage: str  # "probing" → "dns_logs" → "finish" → "done"
    world: World
    vantage_points: list[VantagePoint]
    pipeline: CacheProbingPipeline
    cache_result: CacheProbingResult | None = None
    logs_result: DnsLogsResult | None = None
    apnic_estimates: dict[int, float] = field(default_factory=dict)


class CampaignCheckpointer:
    """The journal + snapshot facade handed to the pipelines.

    ``record`` appends a journal record — or, while resuming, verifies
    it against the journal suffix instead.  ``snapshot`` pickles the
    bound :class:`CampaignState` and journals a marker pointing at the
    file; snapshots are suppressed while replaying (the on-disk history
    past the loaded snapshot must stay byte-stable until re-execution
    catches up).
    """

    def __init__(
        self,
        directory: str | Path,
        config: CheckpointConfig | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config or CheckpointConfig()
        self._faults = faults
        self._journal = Journal(self.directory / "journal.bin",
                                fsync=self.config.fsync)
        self._snapshots = SnapshotStore(self.directory,
                                        keep=self.config.keep_snapshots,
                                        fsync=self.config.fsync)
        self._state: CampaignState | None = None
        self._replay: deque[dict] = deque()
        self._appends = 0
        self._snapshot_saves = 0
        # Telemetry is observational only: counters tally write volume,
        # the profiler charges snapshot time to the "checkpoint" phase,
        # and flushes land in <dir>/telemetry/ — never in journal.bin,
        # whose byte stream is replay-verified on resume.
        telemetry = obs_runtime.current()
        self._telemetry = telemetry if telemetry.enabled else None
        if self._telemetry is not None:
            registry = telemetry.registry
            self._m_appends = registry.counter("journal.appends")
            self._m_journal_bytes = registry.counter("journal.bytes")
            self._m_snapshots = registry.counter("snapshot.writes")
            self._m_snapshot_bytes = registry.counter("snapshot.bytes")

    # -- wiring ------------------------------------------------------------

    def bind(self, state: CampaignState) -> None:
        """Attach the state object that ``snapshot`` pickles."""
        self._state = state

    def rebind_telemetry(self, telemetry) -> None:
        """Point the write-volume counters at a resumed run's bundle.

        Resume recovers the checkpointer *before* the snapshot's
        telemetry bundle is unpickled, so the constructor bound to the
        ambient (usually disabled) bundle; this swaps in the real one.
        """
        self._telemetry = telemetry if telemetry.enabled else None
        if self._telemetry is not None:
            registry = telemetry.registry
            self._m_appends = registry.counter("journal.appends")
            self._m_journal_bytes = registry.counter("journal.bytes")
            self._m_snapshots = registry.counter("snapshot.writes")
            self._m_snapshot_bytes = registry.counter("snapshot.bytes")

    @property
    def replaying(self) -> bool:
        """Whether journaled history is still being verified."""
        return bool(self._replay)

    @property
    def appends(self) -> int:
        """Journal records written (including recovered history)."""
        return self._appends

    def close(self) -> None:
        """Release the journal file handle."""
        self._journal.close()

    # -- journaling --------------------------------------------------------

    def record(self, record: dict) -> None:
        """Journal one event — or verify it against replayed history."""
        if self._replay:
            expected = self._replay.popleft()
            if canonical(record) != canonical(expected):
                raise ReplayDivergence(
                    f"resumed run diverged from journal at record "
                    f"#{self._appends - len(self._replay)}: regenerated "
                    f"{record!r}, journal has {expected!r}"
                )
            return
        self._append(record)

    def _append(self, record: dict) -> None:
        self._appends += 1
        if (self._faults is not None
                and self._faults.crash_on_journal_append(self._appends)):
            from repro.sim.faults import SimulatedCrash

            if self._faults.config.crash_torn_write:
                self._journal.append_torn(record)
            else:
                self._journal.append(record)
            self._journal.close()
            raise SimulatedCrash(
                f"injected crash at journal append #{self._appends}")
        frame_bytes = self._journal.append(record)
        if self._telemetry is not None:
            self._m_appends.inc()
            self._m_journal_bytes.inc(frame_bytes)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> None:
        """Snapshot the bound state now (no-op while replaying)."""
        if self.replaying:
            # Re-execution reached a snapshot boundary while journaled
            # history is still being verified.  When recovery fell back
            # past a quarantined or corrupt newer snapshot, that
            # snapshot's marker record sits at the head of the replay
            # queue right now (re-execution is deterministic, so the
            # boundaries line up) — consume it, or the next `record`
            # call would compare a live event against the marker and
            # report a bogus divergence.
            if self._replay[0].get("type") == "snapshot":
                self._replay.popleft()
            return
        if self._state is None:
            return
        self._snapshot_saves += 1
        telemetry = self._telemetry
        with (telemetry.phase("checkpoint") if telemetry is not None
              else _NULL_CONTEXT):
            name = self._snapshots.save(
                self._state, seq=self._appends + 1,
                before_replace=self._pre_rename_hook(self._snapshot_saves))
            self._append({"type": "snapshot", "file": name,
                          "stage": self._state.stage})
            self._snapshots.prune()
        if telemetry is not None:
            self._m_snapshots.inc()
            try:
                self._m_snapshot_bytes.inc(
                    (self.directory / name).stat().st_size)
            except OSError:
                pass  # pruned or renamed under us; size is advisory
            telemetry.flush(self.directory)

    def _pre_rename_hook(self, save_index: int):
        """The crash-injection hook firing between ``.tmp`` write and
        atomic rename (``FaultConfig.crash_before_snapshot_rename``)."""
        if self._faults is None:
            return None

        def hook() -> None:
            if self._faults.crash_on_snapshot_rename(save_index):
                from repro.sim.faults import SimulatedCrash

                self._journal.close()
                raise SimulatedCrash(
                    f"injected crash before snapshot rename "
                    f"#{save_index}")

        return hook

    def maybe_snapshot(self, slot_index: int) -> None:
        """Snapshot on the configured slot cadence.

        The same cadence emits a time-series sample of the metrics
        registry, keyed by the slot index — a *replicated* coordinate
        (every shard and the serial run walk the same slot schedule),
        so per-shard samples merge by epoch and a resumed run re-emits
        replayed epochs' samples byte-identically.  The sample goes
        first: if a crash lands between sample and snapshot marker,
        re-execution emits a payload-identical duplicate that
        ``read_series`` dedupes — the span stream's exact contract.
        """
        if (slot_index + 1) % self.config.snapshot_every_slots == 0:
            self._sample_series(slot_index)
            self.snapshot()

    def _sample_series(self, slot_index: int) -> None:
        if self.replaying or self._telemetry is None:
            return
        state = self._state
        world = getattr(state, "world", None)
        if world is None:
            return
        self._telemetry.sample("slot", slot_index, world.clock.now)

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory: str | Path,
        config: CheckpointConfig | None = None,
        faults: FaultInjector | None = None,
    ) -> tuple["CampaignCheckpointer", CampaignState | None, bool]:
        """Recover a checkpoint dir: truncate any torn journal tail,
        load the newest intact snapshot, and queue the journal suffix
        for replay verification.

        Returns (checkpointer, state-or-None, torn-tail-discarded).
        Mid-file journal corruption propagates as
        :class:`~repro.persist.journal.JournalCorruption` — recovery
        never silently truncates valid history; ``repro fsck --repair``
        quarantines and rebuilds instead.
        """
        directory = Path(directory)
        records, torn = Journal.recover(directory / "journal.bin")
        ckpt = cls(directory, config, faults=faults)
        stale = ckpt._snapshots.sweep_stale_tmp()
        for name in stale:
            logger.warning(
                "swept stale snapshot temporary %s from %s (crash "
                "between write and atomic rename)", name, directory)
        ckpt._appends = len(records)
        for index in reversed(range(len(records))):
            record = records[index]
            if record.get("type") != "snapshot":
                continue
            try:
                state = ckpt._snapshots.load(record["file"])
            except SnapshotError:
                continue  # fall back to an older snapshot
            ckpt._replay = deque(records[index + 1:])
            return ckpt, state, torn
        return ckpt, None, torn


# -- campaign driver ---------------------------------------------------------


def run_campaign(
    config: ExperimentConfig | None = None,
    checkpoint_dir: str | Path = "checkpoints",
    checkpoint_config: CheckpointConfig | None = None,
) -> ExperimentResult:
    """Run the full §4 experiment with crash-safe checkpointing.

    ``checkpoint_dir`` must be fresh (no journal): an existing campaign
    is resumed with :func:`resume_campaign`, never silently restarted.
    """
    config = config or ExperimentConfig.small()
    directory = Path(checkpoint_dir)
    journal_path = directory / "journal.bin"
    if journal_path.exists() \
            and journal_path.stat().st_size > len(JOURNAL_MAGIC):
        raise CheckpointError(
            f"{directory} already holds a campaign journal; resume it "
            "with resume_campaign() (or `repro resume`), or point "
            "--checkpoint-dir at a fresh directory"
        )
    world = build_world(config.world)
    vantage_points = deploy_vantage_points(world)
    pipeline = CacheProbingPipeline(
        world,
        config.probing,
        activity_config=config.activity,
        vantage_points=vantage_points,
    )
    state = CampaignState(
        config=config,
        stage="probing",
        world=world,
        vantage_points=vantage_points,
        pipeline=pipeline,
    )
    checkpointer = CampaignCheckpointer(directory, checkpoint_config,
                                        faults=world.faults)
    checkpointer.bind(state)
    checkpointer.record({"type": "phase", "name": "campaign_start",
                         "seed": config.seed})
    checkpointer.snapshot()
    return _drive(state, checkpointer)


def resume_campaign(
    checkpoint_dir: str | Path,
    checkpoint_config: CheckpointConfig | None = None,
    faults: FaultInjector | None = None,
) -> ExperimentResult:
    """Resume a crashed campaign from its checkpoint directory.

    Recovers the journal (discarding a torn final record), loads the
    newest intact snapshot and re-executes deterministically from it,
    verifying regenerated events against the journaled suffix.  Crash
    injection is *not* re-armed unless a ``faults`` injector is passed
    explicitly.
    """
    checkpointer, state, _torn = CampaignCheckpointer.recover(
        checkpoint_dir, checkpoint_config, faults=faults)
    if state is None:
        raise CheckpointError(
            f"{checkpoint_dir} holds no resumable snapshot; "
            "run the campaign from scratch"
        )
    checkpointer.bind(state)
    telemetry = getattr(state.pipeline, "telemetry", None)
    if telemetry is not None and telemetry.enabled:
        # The dead run had telemetry on: its registry and profiler
        # travelled in the snapshot; re-attach the span stream
        # (recovering a torn tail) and keep counting.
        telemetry.attach_tracer(checkpoint_dir)
        checkpointer.rebind_telemetry(telemetry)
        with obs_runtime.activate(telemetry):
            try:
                return _drive(state, checkpointer)
            finally:
                telemetry.close()
    return _drive(state, checkpointer)


def _drive(state: CampaignState,
           checkpointer: CampaignCheckpointer) -> ExperimentResult:
    """Advance the campaign through its remaining stages."""
    config = state.config
    if state.stage == "probing":
        state.cache_result = state.pipeline.run(checkpointer=checkpointer)
        state.stage = "dns_logs"
        checkpointer.record({
            "type": "phase", "name": "cache_probing_done",
            "probes": state.cache_result.probes_sent,
            "hits": len(state.cache_result.hits),
        })
        checkpointer.snapshot()
    if state.stage == "dns_logs":
        state.logs_result = DnsLogsPipeline(
            state.world, config.dns_logs).run(checkpointer=checkpointer)
        state.stage = "finish"
        checkpointer.record({
            "type": "phase", "name": "dns_logs_done",
            "probes": state.logs_result.total_probes(),
        })
        checkpointer.snapshot()
    if state.stage == "finish":
        state.apnic_estimates = ApnicEstimator(
            state.world, seed=config.seed,
        ).estimate(impressions=config.apnic_impressions)
        state.stage = "done"
        checkpointer.record({"type": "phase", "name": "campaign_done"})
        checkpointer.snapshot()
    assert state.cache_result is not None and state.logs_result is not None
    datasets = build_all_datasets(
        state.world, state.cache_result, state.logs_result,
        state.apnic_estimates,
    )
    checkpointer.close()
    return ExperimentResult(
        config=config,
        world=state.world,
        vantage_points=state.vantage_points,
        cache_result=state.cache_result,
        logs_result=state.logs_result,
        apnic_estimates=state.apnic_estimates,
        datasets=datasets,
    )
