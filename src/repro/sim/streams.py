"""Keyed deterministic random streams.

A sequential PRNG couples every consumer to global scheduling order:
the Nth draw depends on how many draws anyone else made before it, so
skipping one query (because a shard does not own its target) perturbs
every draw that follows.  That coupling is what makes naive sharding
diverge from a serial run.

:class:`KeyedStream` removes the coupling by making each draw a pure
function of

* the stream's ``(seed, label)`` identity,
* the simulated clock's current instant,
* the caller-supplied **event key** (who is asking, about what), and
* a per-``(instant, key)`` repeat counter, so redundant queries for the
  same event at the same instant still see fresh randomness.

Two runs that evaluate the *same event* get the same draw no matter
which other events ran before it — which is exactly the property the
serial ≡ parallel equivalence contract needs.  Key elements must be
primitives with deterministic ``repr`` (ints, floats, strings, None);
never pass objects whose ``repr`` embeds a memory address.

The repeat counters are scoped to a single clock instant and cleared
whenever the clock moves, so memory stays bounded by the number of
distinct events per instant, not per run.
"""

from __future__ import annotations

import hashlib

from repro.sim.clock import Clock

#: 53-bit mantissa scale, mirroring ``random.Random.random``'s range.
_SCALE = float(1 << 53)


class KeyedStream:
    """Deterministic per-event randomness bound to a simulated clock."""

    def __init__(self, seed: int, label: str, clock: Clock) -> None:
        self._prefix = f"{seed}:{label}:".encode()
        self._clock = clock
        self._epoch: float | None = None
        self._repeats: dict[tuple, int] = {}
        #: total draws ever made — lets tests pin "no randomness was
        #: consumed" without reaching into generator internals.
        self.draws = 0

    def _digest(self, key: tuple) -> int:
        now = self._clock.now
        if now != self._epoch:
            self._epoch = now
            self._repeats.clear()
        repeat = self._repeats.get(key, 0)
        self._repeats[key] = repeat + 1
        digest = hashlib.blake2b(
            self._prefix + repr((now, repeat, key)).encode(),
            digest_size=8,
        ).digest()
        self.draws += 1
        return int.from_bytes(digest, "big")

    def uniform(self, *key) -> float:
        """A draw in ``[0, 1)`` for the event identified by ``key``."""
        return (self._digest(key) >> 11) / _SCALE

    def randrange(self, n: int, *key) -> int:
        """A draw in ``range(n)`` for the event identified by ``key``."""
        if n < 1:
            raise ValueError(f"randrange needs n >= 1, got {n}")
        return self._digest(key) % n

    def mirror(self, clock: Clock) -> "KeyedStream":
        """A fresh stream with the same ``(seed, label)`` identity bound
        to a different clock.

        Because a draw is a pure function of identity, instant, event
        key and the per-instant repeat counter, a mirror whose clock
        replays the same trajectory reproduces the original's draws
        event-for-event.  The parallel planner uses mirrors on a private
        clock to pre-compute, without touching live state, which faults
        and retries every shard's schedule walk will observe.
        """
        stream = KeyedStream.__new__(KeyedStream)
        stream._prefix = self._prefix
        stream._clock = clock
        stream._epoch = None
        stream._repeats = {}
        stream.draws = 0
        return stream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KeyedStream({self._prefix!r}, draws={self.draws})")
