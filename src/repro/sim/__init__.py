"""Simulation utilities: the shared deterministic clock and the
opt-in fault-injection layer."""

from repro.sim.clock import DAY, HOUR, Clock, ClockError
from repro.sim.faults import (
    CORRUPTION_KINDS,
    CorruptionError,
    FaultConfig,
    FaultInjector,
    FaultStats,
    OutageWindow,
    corrupt_duplicate_record,
    corrupt_flip_byte,
    corrupt_swap_files,
    corrupt_truncate,
    corrupt_zero_page,
    inject_corruption,
)

__all__ = [
    "CORRUPTION_KINDS",
    "Clock",
    "ClockError",
    "CorruptionError",
    "DAY",
    "HOUR",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "OutageWindow",
    "corrupt_duplicate_record",
    "corrupt_flip_byte",
    "corrupt_swap_files",
    "corrupt_truncate",
    "corrupt_zero_page",
    "inject_corruption",
]
