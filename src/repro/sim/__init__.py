"""Simulation utilities: the shared deterministic clock."""

from repro.sim.clock import DAY, HOUR, Clock, ClockError

__all__ = ["Clock", "ClockError", "DAY", "HOUR"]
