"""Simulation utilities: the shared deterministic clock and the
opt-in fault-injection layer."""

from repro.sim.clock import DAY, HOUR, Clock, ClockError
from repro.sim.faults import (
    FaultConfig,
    FaultInjector,
    FaultStats,
    OutageWindow,
)

__all__ = [
    "Clock",
    "ClockError",
    "DAY",
    "HOUR",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "OutageWindow",
]
