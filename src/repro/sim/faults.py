"""Fault injection for the simulated network.

The real measurement ran against a hostile Internet: UDP queries get
lost, authoritatives throw transient SERVFAILs, Google PoPs REFUSE
over-eager probing in bursts beyond the steady-state token buckets
(§3.1.1), whole PoPs disappear behind routing changes, and cloud
vantage points die mid-campaign.  The seed simulator's network path was
perfectly reliable, so none of the pipeline code a production
deployment needs (retries, breakers, failover) was ever exercised.

:class:`FaultInjector` makes the simulated path unreliable in
configurable, *seeded-deterministic* ways.  Every fault class draws
from its own dedicated :class:`~repro.sim.streams.KeyedStream` so that,
say, raising the packet-loss rate does not perturb the SERVFAIL
sequence — and, because keyed streams are pure functions of the event
identity rather than of draw order, skipping unrelated queries (as a
campaign shard does) leaves every remaining fault decision unchanged.
With the default (all-zero) :class:`FaultConfig` the injector never
draws randomness and never fires — fault injection is strictly opt-in,
and a run with faults disabled is bit-identical to one without the
subsystem at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import Clock
from repro.sim.streams import KeyedStream


class SimulatedCrash(RuntimeError):
    """Injected process death (see ``FaultConfig.crash_after_appends``).

    Raised out of the checkpointing layer to model the process being
    killed mid-campaign; nothing catches it inside the pipeline, so it
    unwinds exactly like SIGKILL would — whatever reached the journal
    is all that survives.
    """


@dataclass(frozen=True, slots=True)
class OutageWindow:
    """A half-open ``[start, end)`` interval of sim time during which
    ``target`` (a PoP id, a vantage key like ``"aws:eu-west-1"``, or
    ``"*"`` for everything) is down."""

    target: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"outage window [{self.start}, {self.end}) is empty"
            )

    def covers(self, target: str, now: float) -> bool:
        """Whether the window silences ``target`` at time ``now``."""
        if self.target != "*" and self.target != target:
            return False
        return self.start <= now < self.end


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """The fault taxonomy and its knobs (see docs/fault_model.md).

    * ``udp_loss_rate`` / ``tcp_loss_rate`` — per-transport packet loss
      on the client↔public-resolver path; a lost query (or its answer)
      surfaces as a timeout.
    * ``servfail_rate`` — transient SERVFAIL at authoritative servers.
    * ``refused_rate`` — per-query REFUSED beyond the token buckets
      (the resolver shedding load).
    * ``pop_outages`` — windows during which a PoP stops answering
      entirely (queries routed to it time out).
    * ``vantage_outages`` — windows during which a cloud vantage point
      is down and cannot emit probes (keyed ``provider:region``).
    * ``refused_bursts`` — windows during which a PoP REFUSES every
      query, the burst-rate-limit episodes §3.1.1 ran into over UDP.
    * ``crash_after_appends`` — kill the process (raise
      :class:`SimulatedCrash`) at exactly the Nth journal append of a
      checkpointed campaign; with ``crash_torn_write`` the fatal record
      is half-written first, exercising torn-tail recovery.  Purely
      deterministic — no RNG stream is consumed.
    * ``crash_before_snapshot_rename`` — kill the process at the Nth
      snapshot *save*, after the ``.tmp`` file is fully written but
      before the atomic rename — the crash window that leaves a stale
      temporary for recovery to sweep.  Also deterministic.
    """

    seed: int = 0
    udp_loss_rate: float = 0.0
    tcp_loss_rate: float = 0.0
    servfail_rate: float = 0.0
    refused_rate: float = 0.0
    pop_outages: tuple[OutageWindow, ...] = ()
    vantage_outages: tuple[OutageWindow, ...] = ()
    refused_bursts: tuple[OutageWindow, ...] = ()
    crash_after_appends: int | None = None
    crash_torn_write: bool = False
    crash_before_snapshot_rename: int | None = None

    def __post_init__(self) -> None:
        _check_rate("udp_loss_rate", self.udp_loss_rate)
        _check_rate("tcp_loss_rate", self.tcp_loss_rate)
        _check_rate("servfail_rate", self.servfail_rate)
        _check_rate("refused_rate", self.refused_rate)
        if self.crash_after_appends is not None \
                and self.crash_after_appends < 1:
            raise ValueError("crash_after_appends must be >= 1 (or None)")
        if self.crash_before_snapshot_rename is not None \
                and self.crash_before_snapshot_rename < 1:
            raise ValueError(
                "crash_before_snapshot_rename must be >= 1 (or None)")

    @property
    def any_enabled(self) -> bool:
        """True when any *network-path* fault can ever fire.

        Crash injection is deliberately excluded: it fires in the
        checkpointing layer, and a crash-only config must leave the
        DNS path bit-identical to a fault-free run.
        """
        return bool(
            self.udp_loss_rate or self.tcp_loss_rate
            or self.servfail_rate or self.refused_rate
            or self.pop_outages or self.vantage_outages
            or self.refused_bursts
        )

    def with_loss(self, rate: float) -> "FaultConfig":
        """A copy with both transports' loss set to ``rate``."""
        import dataclasses

        return dataclasses.replace(
            self, udp_loss_rate=rate, tcp_loss_rate=rate)


# -- long-horizon scenarios ---------------------------------------------------
#
# A continuous measurement service (repro.service) lives through fault
# episodes that span many rolling windows, not single queries.  These
# builders compose the episode shapes docs/fault_model.md describes —
# sustained PoP outages, flapping vantages, resolver rate-limit
# squeezes — out of the primitive OutageWindow, so scenarios stay pure
# functions of the sim clock with zero new runtime machinery.


def sustained_pop_outage(
    pop_ids, start_h: float, duration_h: float,
) -> tuple[OutageWindow, ...]:
    """Multi-hour outage windows taking ``pop_ids`` down together.

    Models a routing incident that blackholes a set of PoPs for hours
    (the paper's campaign saw PoPs vanish for long stretches); feed the
    result to ``FaultConfig.pop_outages``.
    """
    if duration_h <= 0:
        raise ValueError("duration_h must be positive")
    return tuple(
        OutageWindow(target=pop_id, start=start_h * 3600.0,
                     end=(start_h + duration_h) * 3600.0)
        for pop_id in pop_ids
    )


def flapping_vantage(
    vantage_key: str, start_h: float, period_h: float,
    cycles: int, duty: float = 0.5,
) -> tuple[OutageWindow, ...]:
    """A vantage point that flaps: down for ``duty`` of every period.

    ``cycles`` periods beginning at ``start_h``; each period of
    ``period_h`` hours starts with a down phase of ``duty * period_h``
    hours.  Feed to ``FaultConfig.vantage_outages`` (keys are
    ``provider:region``).
    """
    if period_h <= 0 or cycles < 1:
        raise ValueError("period_h must be positive and cycles >= 1")
    if not 0.0 < duty < 1.0:
        raise ValueError(f"duty must be in (0, 1), got {duty}")
    windows = []
    for cycle in range(cycles):
        start = (start_h + cycle * period_h) * 3600.0
        windows.append(OutageWindow(
            target=vantage_key, start=start,
            end=start + duty * period_h * 3600.0,
        ))
    return tuple(windows)


def resolver_squeeze(
    start_h: float, duration_h: float, pop_ids=("*",),
) -> tuple[OutageWindow, ...]:
    """A resolver-side rate-limit squeeze: the public resolver sheds
    probe load with REFUSED at the given PoPs for a sustained stretch
    (the §3.1.1 burst episodes, scaled to hours).  Feed the result to
    ``FaultConfig.refused_bursts``.
    """
    if duration_h <= 0:
        raise ValueError("duration_h must be positive")
    return tuple(
        OutageWindow(target=pop_id, start=start_h * 3600.0,
                     end=(start_h + duration_h) * 3600.0)
        for pop_id in pop_ids
    )


@dataclass(slots=True)
class FaultStats:
    """How often each fault class actually fired."""

    dropped_udp: int = 0
    dropped_tcp: int = 0
    servfails: int = 0
    refused_injected: int = 0
    refused_burst: int = 0
    pop_outage_drops: int = 0
    vantage_blocked: int = 0
    crashes: int = 0

    def total(self) -> int:
        """All injected faults."""
        return (self.dropped_udp + self.dropped_tcp + self.servfails
                + self.refused_injected + self.refused_burst
                + self.pop_outage_drops + self.vantage_blocked
                + self.crashes)

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot keyed by fault class."""
        return {
            "dropped_udp": self.dropped_udp,
            "dropped_tcp": self.dropped_tcp,
            "servfails": self.servfails,
            "refused_injected": self.refused_injected,
            "refused_burst": self.refused_burst,
            "pop_outage_drops": self.pop_outage_drops,
            "vantage_blocked": self.vantage_blocked,
            "crashes": self.crashes,
        }


class FaultInjector:
    """Decides, query by query, which faults fire.

    Holds one keyed stream per stochastic fault class, all derived from
    ``config.seed``, so fault sequences are reproducible and mutually
    independent.  Callers identify each decision with an **event key**
    (source address, query name, ECS prefix, …): the outcome is a pure
    function of ``(seed, clock instant, key)``, never of how many other
    queries drew before it.  Window-based faults (outages, bursts) are
    pure functions of the clock and draw no randomness at all.
    """

    def __init__(self, config: FaultConfig, clock: Clock) -> None:
        self.config = config
        self._clock = clock
        #: fast-path flag: hot paths check this before anything else.
        self.enabled = config.any_enabled
        self.stats = FaultStats()
        self._loss = KeyedStream(config.seed, "loss", clock)
        self._servfail = KeyedStream(config.seed, "servfail", clock)
        self._refused = KeyedStream(config.seed, "refused", clock)

    @property
    def draws(self) -> int:
        """Total randomness consumed across all fault streams."""
        return self._loss.draws + self._servfail.draws + self._refused.draws

    # -- stochastic faults -------------------------------------------------

    def drop_query(self, transport, key: tuple = ()) -> bool:
        """Packet loss on the resolver path (either direction).

        ``key`` identifies the query (source, name, ECS …) so the
        decision is independent of every other query's fate.
        """
        from repro.dns.message import Transport

        if transport is Transport.UDP:
            rate = self.config.udp_loss_rate
            if rate and self._loss.uniform(transport.value, *key) < rate:
                self.stats.dropped_udp += 1
                return True
            return False
        rate = self.config.tcp_loss_rate
        if rate and self._loss.uniform(transport.value, *key) < rate:
            self.stats.dropped_tcp += 1
            return True
        return False

    def authoritative_servfail(self, key: tuple = ()) -> bool:
        """Transient SERVFAIL at an authoritative server."""
        rate = self.config.servfail_rate
        if rate and self._servfail.uniform(*key) < rate:
            self.stats.servfails += 1
            return True
        return False

    def inject_refused(self, pop_id: str, key: tuple = ()) -> bool:
        """REFUSED beyond the token buckets: burst episodes first, then
        the per-query shedding rate."""
        for window in self.config.refused_bursts:
            if window.covers(pop_id, self._clock.now):
                self.stats.refused_burst += 1
                return True
        rate = self.config.refused_rate
        if rate and self._refused.uniform(pop_id, *key) < rate:
            self.stats.refused_injected += 1
            return True
        return False

    # -- window faults -----------------------------------------------------

    def pop_down(self, pop_id: str) -> bool:
        """Whether the PoP is inside an outage window right now."""
        for window in self.config.pop_outages:
            if window.covers(pop_id, self._clock.now):
                self.stats.pop_outage_drops += 1
                return True
        return False

    def vantage_down(self, vantage_key: str) -> bool:
        """Whether the vantage point is inside an outage window."""
        for window in self.config.vantage_outages:
            if window.covers(vantage_key, self._clock.now):
                self.stats.vantage_blocked += 1
                return True
        return False

    # -- crash injection ---------------------------------------------------

    def crash_on_journal_append(self, append_index: int) -> bool:
        """Whether the checkpointer should die at this journal append.

        ``append_index`` is 1-based and counts appends over the life of
        the journal file.  Resume paths do not re-arm crash injection
        by default (see :func:`repro.persist.campaign.resume_campaign`),
        matching a supervisor that restarts the process without
        re-scheduling the kill.
        """
        target = self.config.crash_after_appends
        if target is not None and append_index == target:
            self.stats.crashes += 1
            return True
        return False

    def crash_on_snapshot_rename(self, save_index: int) -> bool:
        """Whether the process should die at this snapshot save, after
        the ``.tmp`` is written but before the atomic rename.

        ``save_index`` is 1-based over the life of the checkpointer.
        The stale ``.tmp`` left behind is exactly what
        :meth:`repro.persist.campaign.CampaignCheckpointer.recover`
        must detect and sweep.
        """
        target = self.config.crash_before_snapshot_rename
        if target is not None and save_index == target:
            self.stats.crashes += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(enabled={self.enabled}, "
                f"injected={self.stats.total()})")


# -- on-disk corruption injection ---------------------------------------------
#
# The crash injectors above model *interrupted writes*; these model
# *bit rot* — damage to checkpoint artifacts that already hit the disk
# (cosmic rays, failing sectors, a misbehaving filesystem).  Each
# injector is a pure function of ``(file bytes, seed)``: the damaged
# offset is drawn from a seeded RNG, so a corruption scenario is
# exactly reproducible, and every injector guarantees the file
# actually changed (an injection that happens to rewrite identical
# bytes re-rolls) so "100% detection" is a meaningful contract for the
# fsck property suite (tests/persist/test_corruption_properties.py).

import hashlib as _hashlib
import random as _random
import struct as _struct


class CorruptionError(RuntimeError):
    """The requested corruption cannot be applied to this file."""


def _rng_for(path, seed: int, kind: str) -> _random.Random:
    """A seeded RNG keyed by (seed, corruption kind, file name), so
    corrupting two artifacts with the same seed damages independent
    offsets — keyed the same way the network-fault streams are."""
    from pathlib import Path

    digest = _hashlib.sha256(
        f"{seed}:{kind}:{Path(path).name}".encode("utf-8")).digest()
    return _random.Random(int.from_bytes(digest[:8], "big"))


def _read_for_corruption(path) -> bytearray:
    from pathlib import Path

    data = bytearray(Path(path).read_bytes())
    if len(data) < 2:
        raise CorruptionError(f"{path} is too small to corrupt")
    return data


def corrupt_flip_byte(path, seed: int = 0) -> dict:
    """XOR one byte at a seeded offset with a seeded nonzero mask."""
    from pathlib import Path

    data = _read_for_corruption(path)
    rng = _rng_for(path, seed, "flip")
    offset = rng.randrange(len(data))
    mask = rng.randrange(1, 256)
    data[offset] ^= mask
    Path(path).write_bytes(bytes(data))
    return {"kind": "flip_byte", "offset": offset, "mask": mask}


def corrupt_zero_page(path, seed: int = 0, page: int = 64) -> dict:
    """Zero a ``page``-byte run at a seeded offset (a dropped sector).

    Re-rolls the offset if the chosen run was already all zeroes, so
    the injection always changes the file.
    """
    from pathlib import Path

    data = _read_for_corruption(path)
    rng = _rng_for(path, seed, "zero")
    for _attempt in range(64):
        offset = rng.randrange(len(data))
        end = min(offset + page, len(data))
        if any(data[offset:end]):
            data[offset:end] = bytes(end - offset)
            Path(path).write_bytes(bytes(data))
            return {"kind": "zero_page", "offset": offset,
                    "length": end - offset}
    raise CorruptionError(f"{path} has no nonzero run to zero")


def corrupt_truncate(path, seed: int = 0) -> dict:
    """Cut a seeded number of bytes off the tail (a lost write burst).

    At least one byte goes, and at least one byte past the 4-byte
    magic stays, so the result is neither intact nor trivially empty.
    """
    from pathlib import Path

    data = _read_for_corruption(path)
    if len(data) < 6:
        raise CorruptionError(f"{path} is too small to truncate")
    rng = _rng_for(path, seed, "truncate")
    keep = rng.randrange(5, len(data))
    Path(path).write_bytes(bytes(data[:keep]))
    return {"kind": "truncate", "kept": keep, "lost": len(data) - keep}


def corrupt_duplicate_record(path, seed: int = 0) -> dict:
    """Duplicate one journal frame in place (a replayed write).

    Journal-aware: walks the length-prefixed frames (without checking
    CRCs) and re-inserts a seeded frame right after itself.  The
    chained frame CRCs make the duplicate — and everything after it —
    fail verification, which is exactly what fsck must detect.
    """
    from pathlib import Path

    data = _read_for_corruption(path)
    frames: list[tuple[int, int]] = []  # (start, end) per frame
    pos = 4  # past the magic
    while pos + 8 <= len(data):
        (length,) = _struct.unpack_from("!I", data, pos)
        end = pos + 8 + length
        if length > len(data) - pos - 8:
            break
        frames.append((pos, end))
        pos = end
    if not frames:
        raise CorruptionError(f"{path} holds no frames to duplicate")
    rng = _rng_for(path, seed, "duplicate")
    start, end = frames[rng.randrange(len(frames))]
    duplicated = data[:end] + data[start:end] + data[end:]
    Path(path).write_bytes(bytes(duplicated))
    return {"kind": "duplicate_record", "frame_start": start,
            "frame_bytes": end - start}


def corrupt_swap_files(path_a, path_b) -> dict:
    """Swap two files' contents in place (crossed renames).

    Both files stay internally self-consistent — detection must come
    from binding content to file name (name-keyed snapshot CRCs,
    delta window indices, journal cross-references).
    """
    from pathlib import Path

    a, b = Path(path_a), Path(path_b)
    data_a, data_b = a.read_bytes(), b.read_bytes()
    if data_a == data_b:
        raise CorruptionError(
            f"{a.name} and {b.name} are identical; swapping is a no-op")
    a.write_bytes(data_b)
    b.write_bytes(data_a)
    return {"kind": "swap_files", "a": a.name, "b": b.name}


#: the single-file corruption matrix the fsck property suite sweeps.
CORRUPTION_KINDS = {
    "flip_byte": corrupt_flip_byte,
    "zero_page": corrupt_zero_page,
    "truncate": corrupt_truncate,
}


def inject_corruption(kind: str, path, seed: int = 0) -> dict:
    """Apply one named single-file corruption; returns its description."""
    try:
        injector = CORRUPTION_KINDS[kind]
    except KeyError:
        raise CorruptionError(
            f"unknown corruption kind {kind!r}; "
            f"have {sorted(CORRUPTION_KINDS)}") from None
    return injector(path, seed=seed)
