"""Simulated time.

All time in the library is simulated seconds since an arbitrary epoch,
carried by a shared :class:`Clock`.  Components that care about time
(DNS caches, rate limiters, trace capture) hold a reference to the
clock; experiments advance it explicitly, which keeps every run
deterministic and lets a "120-hour" measurement finish in milliseconds.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when time would move backwards."""


class Clock:
    """A monotonically advancing simulated clock.

    Besides the time itself the clock counts how often it was advanced
    (``ticks``).  Two runs that reach the same ``now`` by different
    advance sequences are *not* equivalent (different components
    observed different intermediate times), so checkpointed campaigns
    journal the tick count alongside the timestamp as a cheap
    divergence detector on resume.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._ticks = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def ticks(self) -> int:
        """How many times the clock has been advanced."""
        return self._ticks

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClockError(f"cannot advance by {seconds} seconds")
        self._now += seconds
        self._ticks += 1
        return self._now

    def advance_batch(self, seconds: float, ticks: int) -> float:
        """Move time forward by ``seconds`` while recording ``ticks``
        individual advances.

        Sharded workers skip the probe visits owned by other shards but
        must still observe the identical clock trajectory — including
        the tick count, which resume-time divergence checks compare.  A
        synchronization summary collapses a foreign span of ``ticks``
        serial ``advance`` calls into one batched call whose time delta
        and tick delta both match the serial walk exactly.
        """
        if seconds < 0:
            raise ClockError(f"cannot advance by {seconds} seconds")
        if ticks < 0:
            raise ClockError(f"cannot advance by {ticks} ticks")
        self._now += seconds
        self._ticks += ticks
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        self._ticks += 1
        return self._now

    def hours_since(self, epoch: float) -> float:
        """Simulated hours elapsed since ``epoch`` (a ``now`` reading).

        Long-horizon schedulers (:mod:`repro.service`) reason about
        rolling windows in hours; negative epochs in the future are a
        caller bug and raise.
        """
        if epoch > self._now:
            raise ClockError(
                f"epoch {epoch} is in the simulated future (now={self._now})"
            )
        return (self._now - epoch) / HOUR

    def ticks_since(self, ticks: int) -> int:
        """Advances observed since a previous ``ticks`` reading — the
        progress signal a watchdog uses to spot a wedged window."""
        if ticks > self._ticks:
            raise ClockError(
                f"tick mark {ticks} is ahead of the clock ({self._ticks})"
            )
        return self._ticks - ticks

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.3f}, ticks={self._ticks})"


HOUR = 3600.0
DAY = 24 * HOUR
