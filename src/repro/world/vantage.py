"""Cloud vantage points.

§3.1.1 runs the prober from AWS and Vultr VMs around the world and
discovers which Google Public DNS PoP each region reaches via
``dig @8.8.8.8 o-o.myaddr.l.google.com -t TXT``.  We model the two
providers' region footprints; reachability is decided by the *cloud*
catchment (some PoPs are not announced towards cloud networks at all,
which is how the paper ends up probing 22 of 45).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.geo import GeoPoint
from repro.world.builder import World


@dataclass(frozen=True, slots=True)
class CloudRegion:
    """One cloud provider region."""
    provider: str
    region: str
    location: GeoPoint


def _r(provider: str, region: str, lat: float, lon: float) -> CloudRegion:
    return CloudRegion(provider, region, GeoPoint(lat, lon))


#: AWS-like + Vultr-like region footprints (coordinates approximate).
DEFAULT_CLOUD_REGIONS: tuple[CloudRegion, ...] = (
    _r("aws", "us-east-1", 39.0, -77.5), _r("aws", "us-east-2", 40.0, -83.0),
    _r("aws", "us-west-1", 37.4, -122.0), _r("aws", "us-west-2", 45.6, -121.2),
    _r("aws", "ca-central-1", 45.5, -73.6), _r("aws", "sa-east-1", -23.5, -46.6),
    _r("aws", "eu-west-1", 53.3, -6.3), _r("aws", "eu-west-2", 51.5, -0.1),
    _r("aws", "eu-west-3", 48.9, 2.4), _r("aws", "eu-central-1", 50.1, 8.7),
    _r("aws", "eu-north-1", 59.3, 18.1), _r("aws", "ap-northeast-1", 35.7, 139.7),
    _r("aws", "ap-northeast-2", 37.6, 127.0), _r("aws", "ap-southeast-1", 1.35, 103.8),
    _r("aws", "ap-southeast-2", -33.9, 151.2), _r("aws", "ap-south-1", 19.1, 72.9),
    _r("vultr", "dallas", 32.8, -96.8), _r("vultr", "seattle", 47.6, -122.3),
    _r("vultr", "chicago", 41.9, -87.6), _r("vultr", "miami", 25.8, -80.2),
    _r("vultr", "toronto", 43.7, -79.4), _r("vultr", "amsterdam", 52.4, 4.9),
    _r("vultr", "warsaw", 52.2, 21.0), _r("vultr", "zurich", 47.4, 8.5),
    _r("vultr", "santiago", -33.5, -70.7), _r("vultr", "sao-paulo", -23.6, -46.7),
    _r("vultr", "tokyo", 35.7, 139.8), _r("vultr", "taipei", 25.0, 121.6),
    _r("vultr", "mexico-city", 19.4, -99.1), _r("vultr", "johannesburg", -26.2, 28.0),
    _r("vultr", "silicon-valley", 37.4, -122.1), _r("vultr", "atlanta", 33.7, -84.4),
    _r("vultr", "kansas-city", 39.1, -94.6), _r("vultr", "los-angeles", 34.05, -118.2),
)


@dataclass(frozen=True, slots=True)
class VantagePoint:
    """A cloud VM with the PoP its anycast path reaches."""

    region: CloudRegion
    source_ip: int
    reached_pop: str


def deploy_vantage_points(
    world: World,
    regions: tuple[CloudRegion, ...] = DEFAULT_CLOUD_REGIONS,
) -> list[VantagePoint]:
    """Place one VM per region and discover the PoP each reaches.

    Mirrors the paper's region sweep: multiple regions often collapse
    onto the same PoP, and whole PoPs can be unreachable from every
    region.
    """
    cloud_prefix = world.routes.prefixes_of(world.cloud_asn)[0]
    vantage_points = []
    for index, region in enumerate(regions):
        source_ip = cloud_prefix.network + (index << 8) + 5
        pop = world.cloud_catchment.pop_for(region.location,
                                            client_key=source_ip >> 8)
        vantage_points.append(
            VantagePoint(region=region, source_ip=source_ip,
                         reached_pop=pop.pop_id)
        )
    return vantage_points


def reached_pops(vantage_points: list[VantagePoint]) -> set[str]:
    """The distinct PoPs covered by a deployment."""
    return {vp.reached_pop for vp in vantage_points}


def pops_by_vantage(
    vantage_points: list[VantagePoint],
) -> dict[str, list[VantagePoint]]:
    """Group vantage points by the PoP they reach; the prober runs one
    prober per PoP from an arbitrary VM that reaches it."""
    grouped: dict[str, list[VantagePoint]] = {}
    for vp in vantage_points:
        grouped.setdefault(vp.reached_pop, []).append(vp)
    return grouped
