"""APNIC-style per-AS user population estimates.

APNIC's "How big is that network?" methodology [19] measures ad
impressions served by Google Ads and scales samples per AS by national
Internet-user figures.  The paper criticises it (§1): unvalidated,
AS-granularity only, expensive, with coverage hostage to ad-bidding.

We model the estimator faithfully enough to reproduce its failure
modes: impression *sampling* (small ASes are missed entirely), uneven
per-country ad reach, and scaling by (true) country user totals.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.world.builder import World


class ApnicEstimator:
    """Ad-impression sampling over a world's user population."""

    def __init__(self, world: World, seed: int = 21) -> None:
        self._world = world
        self._rng = random.Random(seed)

    def estimate(self, impressions: int = 200_000) -> dict[int, float]:
        """Per-AS estimated user counts from ``impressions`` samples.

        ASes that draw no impressions are absent — the coverage gap §4
        quantifies (APNIC misses 64% of ASes with Microsoft clients).
        """
        if impressions < 1:
            raise ValueError("need at least one impression")
        world = self._world
        # Ad impressions land on *users*, weighted by the country's ad
        # reach (ad inventory is thin in some markets).
        weighted_blocks = []
        weights = []
        reach = {c.code: c.ad_reach for c in world.countries}
        for block in world.blocks:
            if block.users > 0:
                weighted_blocks.append(block)
                weights.append(block.users * reach.get(block.country, 0.5))
            elif block.bots > 0:
                # Automation in data centres views a trickle of ads,
                # which is why real APNIC data lists cloud ASes with
                # tiny estimated populations.
                weighted_blocks.append(block)
                weights.append(block.bots * 0.05)
        if not weighted_blocks:
            return {}
        sampled = self._rng.choices(weighted_blocks, weights=weights,
                                    k=impressions)
        by_as_country: Counter[tuple[int, str]] = Counter()
        by_country: Counter[str] = Counter()
        for block in sampled:
            by_as_country[(block.asn, block.country)] += 1
            by_country[block.country] += 1
        # Scale samples to national user totals, as APNIC scales to ITU
        # figures.  The totals are the world's ground truth: APNIC's
        # error is in the sampling, not in the national denominators.
        country_users = world.true_users_by_country()
        estimates: dict[int, float] = {}
        for (asn, country), count in by_as_country.items():
            national = country_users.get(country, 0)
            share = count / by_country[country]
            estimates[asn] = estimates.get(asn, 0.0) + share * national
        return estimates

    def estimate_by_country(
        self, impressions: int = 200_000
    ) -> dict[str, dict[int, float]]:
        """Per-country view of :meth:`estimate` (Figure 3's input)."""
        per_as = self.estimate(impressions)
        result: dict[str, dict[int, float]] = {}
        for asn, users in per_as.items():
            record = self._world.registry.get(asn)
            if record is None:
                continue
            result.setdefault(record.country, {})[asn] = users
        return result
