"""The Microsoft-like CDN and its three proprietary validation datasets.

§4 validates against server-side views of two Azure services:

* **Microsoft clients** — CDN access counts aggregated by client /24;
* **Microsoft resolvers** — distinct client IPs observed per recursive
  resolver (the CDN can associate a client's HTTP session with the
  resolver that performed its DNS lookup);
* **cloud ECS prefixes** — the ECS prefixes seen in queries at the
  Traffic Manager authoritative.

The simulator records the same three views as activity flows through
the world; exporters return them in the aggregate forms the paper's
tables consume.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.net.prefix import Prefix, slash24_id
from repro.dns.authoritative import AuthoritativeServer
from repro.dns.name import DnsName
from repro.sim.clock import Clock


class CdnService:
    """Server-side logging for the CDN and its DNS load balancer."""

    def __init__(
        self,
        clock: Clock,
        domain: DnsName,
        authoritative: AuthoritativeServer,
    ) -> None:
        self._clock = clock
        self.domain = domain
        self._authoritative = authoritative
        self._http_hits: Counter[int] = Counter()          # /24 id -> requests
        self._clients_by_resolver: defaultdict[int, set[int]] = defaultdict(set)

    # -- recording --------------------------------------------------------

    def record_http(self, client_ip: int, requests: int = 1) -> None:
        """The CDN served ``requests`` HTTP requests to ``client_ip``."""
        if requests < 1:
            raise ValueError("requests must be positive")
        self._http_hits[slash24_id(client_ip)] += requests

    def record_session(self, client_ip: int, resolver_ip: int) -> None:
        """An HTTP session whose DNS lookup came via ``resolver_ip``."""
        self._clients_by_resolver[resolver_ip].add(client_ip)

    # -- the three datasets ----------------------------------------------

    def microsoft_clients(self) -> dict[int, int]:
        """CDN request volume per client /24 id."""
        return dict(self._http_hits)

    def microsoft_resolvers(self) -> dict[int, int]:
        """Distinct client-IP count per recursive resolver IP."""
        return {ip: len(clients)
                for ip, clients in self._clients_by_resolver.items()}

    def cloud_ecs_prefixes(
        self, start: float = 0.0, end: float | None = None
    ) -> set[Prefix]:
        """ECS prefixes observed at the Traffic Manager authoritative."""
        end = self._end_of_window(end)
        prefixes: set[Prefix] = set()
        for entry in self._authoritative.log.between(start, end):
            if entry.name == self.domain and entry.ecs is not None:
                prefixes.add(entry.ecs.prefix)
        return prefixes

    def ecs_query_volume_by_prefix(
        self, start: float = 0.0, end: float | None = None
    ) -> dict[Prefix, int]:
        """ECS query counts per prefix at the Traffic Manager."""
        end = self._end_of_window(end)
        volume: Counter[Prefix] = Counter()
        for entry in self._authoritative.log.between(start, end):
            if entry.name == self.domain and entry.ecs is not None:
                volume[entry.ecs.prefix] += 1
        return dict(volume)

    def _end_of_window(self, end: float | None) -> float:
        """Default window end: just past "now", so entries logged at
        the current instant are included (between() is half-open)."""
        return self._clock.now + 1e-6 if end is None else end

    # -- summary stats -----------------------------------------------------

    def total_http_requests(self) -> int:
        """All HTTP requests the CDN served."""
        return sum(self._http_hits.values())

    def client_slash24_ids(self) -> set[int]:
        """/24 ids the CDN saw HTTP from."""
        return set(self._http_hits)

    def resolver_ips(self) -> set[int]:
        """Resolver IPs observed in DNS sessions."""
        return set(self._clients_by_resolver)
