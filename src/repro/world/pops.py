"""The public resolver's PoP deployment.

Mirrors the deployment §A.1 describes: 45 PoPs, of which the paper's
cloud vantage points reach 22 ("probed and verified"), 5 more are
active — they show up serving clients in the Microsoft resolver logs —
but unreachable from any cloud region ("unprobed and verified",
concentrated where the paper's coverage is weakest, South America), and
18 are inactive ("unprobed and unverified").
"""

from __future__ import annotations

from repro.net.geo import GeoPoint
from repro.dns.anycast import PoP
from repro.world.model import PopDescriptor


def _pop(pop_id: str, lat: float, lon: float, city: str, country: str,
         active: bool = True) -> PoP:
    return PoP(pop_id=pop_id, location=GeoPoint(lat, lon), city=city,
               country=country, active=active)


def default_pops() -> list[PopDescriptor]:
    """The standard 45-PoP deployment (22 + 5 + 18)."""
    probed = [
        # United States — seven states.
        _pop("us-or", 45.59, -121.18, "The Dalles", "US"),
        _pop("us-sc", 33.08, -80.04, "Charleston", "US"),
        _pop("us-ia", 41.26, -95.86, "Council Bluffs", "US"),
        _pop("us-ok", 36.30, -95.30, "Mayes County", "US"),
        _pop("us-va", 39.01, -77.46, "Ashburn", "US"),
        _pop("us-tx", 32.78, -96.80, "Dallas", "US"),
        _pop("us-ca", 37.37, -122.04, "Mountain View", "US"),
        # Canada — two provinces.
        _pop("ca-qc", 45.50, -73.57, "Montreal", "CA"),
        _pop("ca-on", 43.65, -79.38, "Toronto", "CA"),
        # Europe — five countries.
        _pop("nl-gro", 53.22, 6.57, "Groningen", "NL"),
        _pop("de-fra", 50.11, 8.68, "Frankfurt", "DE"),
        _pop("gb-lon", 51.51, -0.13, "London", "GB"),
        _pop("ch-zrh", 47.38, 8.54, "Zurich", "CH"),
        _pop("pl-waw", 52.23, 21.01, "Warsaw", "PL"),
        # Asia — five countries/regions.
        _pop("jp-tyo", 35.68, 139.69, "Tokyo", "JP"),
        _pop("sg-sin", 1.35, 103.82, "Singapore", "SG"),
        _pop("tw-tpe", 25.03, 121.57, "Taipei", "TW"),
        _pop("in-bom", 19.08, 72.88, "Mumbai", "IN"),
        _pop("kr-sel", 37.57, 126.98, "Seoul", "KR"),
        # South America — two countries.
        _pop("br-gru", -23.55, -46.63, "Sao Paulo", "BR"),
        _pop("cl-scl", -33.45, -70.67, "Santiago", "CL"),
        # Australia.
        _pop("au-syd", -33.87, 151.21, "Sydney", "AU"),
    ]
    unprobed_verified = [
        _pop("ar-bue", -34.60, -58.38, "Buenos Aires", "AR"),
        _pop("co-bog", 4.71, -74.07, "Bogota", "CO"),
        _pop("pe-lim", -12.05, -77.04, "Lima", "PE"),
        _pop("ng-los", 6.52, 3.38, "Lagos", "NG"),
        _pop("id-jkt", -6.21, 106.85, "Jakarta", "ID"),
    ]
    inactive = [
        _pop("us-ga", 33.75, -84.39, "Atlanta", "US", active=False),
        _pop("us-nv", 36.17, -115.14, "Las Vegas", "US", active=False),
        _pop("us-oh", 39.96, -83.00, "Columbus", "US", active=False),
        _pop("mx-mex", 19.43, -99.13, "Mexico City", "MX", active=False),
        _pop("fr-par", 48.86, 2.35, "Paris", "FR", active=False),
        _pop("es-mad", 40.42, -3.70, "Madrid", "ES", active=False),
        _pop("it-mil", 45.46, 9.19, "Milan", "IT", active=False),
        _pop("se-sto", 59.33, 18.07, "Stockholm", "SE", active=False),
        _pop("ru-mow", 55.76, 37.62, "Moscow", "RU", active=False),
        _pop("tr-ist", 41.01, 28.98, "Istanbul", "TR", active=False),
        _pop("il-tlv", 32.09, 34.78, "Tel Aviv", "IL", active=False),
        _pop("sa-ruh", 24.71, 46.68, "Riyadh", "SA", active=False),
        _pop("th-bkk", 13.76, 100.50, "Bangkok", "TH", active=False),
        _pop("vn-sgn", 10.82, 106.63, "Ho Chi Minh City", "VN", active=False),
        _pop("ph-mnl", 14.60, 120.98, "Manila", "PH", active=False),
        _pop("za-jnb", -26.20, 28.05, "Johannesburg", "ZA", active=False),
        _pop("eg-cai", 30.04, 31.24, "Cairo", "EG", active=False),
        _pop("nz-akl", -36.85, 174.76, "Auckland", "NZ", active=False),
    ]
    return (
        [PopDescriptor(pop=p, cloud_reachable=True) for p in probed]
        + [PopDescriptor(pop=p, cloud_reachable=False) for p in unprobed_verified]
        + [PopDescriptor(pop=p, cloud_reachable=False) for p in inactive]
    )
