"""Synthetic Internet: countries, ASes, client blocks, geolocation,
resolvers, the public resolver deployment, CDN logging, APNIC-style
estimation, ASdb categorisation and cloud vantage points."""

from repro.world.activity import (
    ActivityConfig,
    ActivitySimulator,
    ActivityStats,
    diurnal_factor,
)
from repro.world.apnic import ApnicEstimator
from repro.world.asdb import CATEGORY_LABELS, AsdbSnapshot
from repro.world.builder import (
    AddressAllocator,
    World,
    WorldBuilder,
    WorldConfig,
    build_world,
)
from repro.world.cdn import CdnService
from repro.world.countries import COUNTRIES, City, Country, country_by_code
from repro.world.domains_catalog import (
    MICROSOFT_CDN_DOMAIN,
    build_authoritatives,
    default_domains,
    probe_domains,
)
from repro.world.geodata import GeoAccuracy, GeoDatabase, GeoEntry
from repro.world.inspect import WorldSummary, category_of, describe_world
from repro.world.model import ClientBlock, DomainSpec, PopDescriptor
from repro.world.peering import PeeringMatrix, PeeringPolicy
from repro.world.pops import default_pops
from repro.world.scenarios import SCENARIOS, scenario
from repro.world.vantage import (
    DEFAULT_CLOUD_REGIONS,
    CloudRegion,
    VantagePoint,
    deploy_vantage_points,
    pops_by_vantage,
    reached_pops,
)

__all__ = [
    "CATEGORY_LABELS",
    "COUNTRIES",
    "DEFAULT_CLOUD_REGIONS",
    "MICROSOFT_CDN_DOMAIN",
    "ActivityConfig",
    "ActivitySimulator",
    "ActivityStats",
    "AddressAllocator",
    "ApnicEstimator",
    "AsdbSnapshot",
    "CdnService",
    "City",
    "ClientBlock",
    "CloudRegion",
    "Country",
    "DomainSpec",
    "GeoAccuracy",
    "GeoDatabase",
    "GeoEntry",
    "PeeringMatrix",
    "PeeringPolicy",
    "PopDescriptor",
    "SCENARIOS",
    "VantagePoint",
    "World",
    "WorldSummary",
    "WorldBuilder",
    "WorldConfig",
    "build_authoritatives",
    "build_world",
    "category_of",
    "country_by_code",
    "describe_world",
    "default_domains",
    "default_pops",
    "deploy_vantage_points",
    "diurnal_factor",
    "pops_by_vantage",
    "probe_domains",
    "reached_pops",
    "scenario",
]
