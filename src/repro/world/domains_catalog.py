"""The web properties the world's clients visit.

The five probe domains of §3.1.1 / §B.4 — the four Alexa-top ECS
domains plus the Microsoft CDN domain — with the behaviours the paper
documents (Facebook only supports ECS without ``www`` and users mostly
query the ``www`` form; Wikipedia answers with coarse /16–/18 scopes),
plus a tail of other popular domains for realistic cache load.
"""

from __future__ import annotations

import random

from repro.net.prefix import Prefix
from repro.dns.authoritative import (
    AuthoritativeServer,
    RegionalScopePolicy,
    ScopePolicy,
    UnstableScopePolicy,
    Zone,
)
from repro.dns.name import DnsName
from repro.dns.public_dns import AuthoritativeDirectory
from repro.sim.clock import Clock
from repro.sim.faults import FaultInjector
from repro.world.model import DomainSpec

MICROSOFT_CDN_DOMAIN = DnsName.parse("assets.msedge.net")

#: Tail domains: (name, rank, supports_ecs, ttl).
_TAIL = (
    ("www.amazon.com", 4, False, 60.0),
    ("www.netflix.com", 20, True, 300.0),
    ("www.twitter.com", 5, False, 1800.0),
    ("www.instagram.com", 16, False, 3600.0),
    ("www.baidu.com", 3, False, 300.0),
    ("www.qq.com", 6, False, 600.0),
    ("www.taobao.com", 8, False, 600.0),
    ("www.yahoo.com", 9, False, 1800.0),
    ("www.reddit.com", 18, False, 300.0),
    ("www.ebay.com", 45, True, 3600.0),
    ("www.linkedin.com", 27, False, 300.0),
    ("www.office.com", 40, True, 300.0),
    ("www.bing.com", 30, True, 300.0),
    ("www.zoom.us", 25, False, 60.0),
    ("www.spotify.com", 55, True, 300.0),
    ("www.cnn.com", 80, True, 60.0),
    ("www.bbc.co.uk", 90, False, 300.0),
    ("www.nytimes.com", 110, True, 500.0),
    ("www.twitch.tv", 35, False, 300.0),
    ("www.github.com", 65, False, 60.0),
)


def default_domains() -> list[DomainSpec]:
    """The full domain catalogue, probe domains first."""
    domains = [
        DomainSpec(DnsName.parse("www.google.com"), rank=1, supports_ecs=True,
                   ttl=300.0, weight=100.0, operator="google",
                   country_weight={"CN": 5.0}),
        DomainSpec(DnsName.parse("www.youtube.com"), rank=2, supports_ecs=True,
                   ttl=300.0, weight=80.0, operator="google",
                   country_weight={"CN": 4.0}),
        # Users query the www form by default; only it is popular, but
        # only the bare form supports ECS (§B.4).
        DomainSpec(DnsName.parse("www.facebook.com"), rank=7, supports_ecs=False,
                   ttl=300.0, weight=45.0, operator="facebook",
                   country_weight={"CN": 1.0}),
        DomainSpec(DnsName.parse("facebook.com"), rank=7, supports_ecs=True,
                   ttl=300.0, weight=12.0, operator="facebook",
                   country_weight={"CN": 0.3}),
        DomainSpec(DnsName.parse("www.wikipedia.org"), rank=13, supports_ecs=True,
                   ttl=600.0, weight=18.0, operator="wikipedia"),
        DomainSpec(MICROSOFT_CDN_DOMAIN, rank=10, supports_ecs=True,
                   ttl=300.0, weight=30.0, operator="microsoft"),
    ]
    for name, rank, ecs, ttl in _TAIL:
        domains.append(
            DomainSpec(DnsName.parse(name), rank=rank, supports_ecs=ecs,
                       ttl=ttl, weight=60.0 / rank, operator="misc")
        )
    return domains


#: Per-operator ECS scope behaviour (§B.4): Wikipedia coarse, the rest
#: /20–/24.
_SCOPE_CHOICES: dict[str, tuple[int, ...]] = {
    "google": (20, 21, 22, 23, 24),
    "facebook": (20, 22, 24),
    "wikipedia": (16, 17, 18),
    "microsoft": (20, 22, 24),
    "misc": (18, 20, 22, 24),
}


def scope_policy_for(
    operator: str,
    rng: random.Random,
    flip_probability: float = 0.08,
    scope_shift: int = 0,
) -> ScopePolicy:
    """Build an operator's (slightly unstable) regional scope policy.

    ``scope_shift`` moves every scope choice finer by that many bits.
    Synthetic worlds are orders of magnitude smaller than the real
    address space, so the paper's absolute scopes (a Wikipedia /16)
    would cover entire synthetic countries; shifting preserves the
    *relative* coarseness across operators that drives Table 5.
    """
    choices = tuple(
        min(24, c + scope_shift)
        for c in _SCOPE_CHOICES.get(operator, _SCOPE_CHOICES["misc"])
    )
    base = RegionalScopePolicy.random(rng, scope_choices=choices,
                                      region_count=48, region_length=6)
    if flip_probability <= 0:
        return base
    return UnstableScopePolicy(base, rng, flip_probability=flip_probability,
                               max_shift=4)


def build_authoritatives(
    clock: Clock,
    domains: list[DomainSpec],
    rng: random.Random,
    scope_flip_probability: float = 0.08,
    scope_shift: int = 0,
    faults: FaultInjector | None = None,
) -> tuple[AuthoritativeDirectory, dict[str, AuthoritativeServer]]:
    """One authoritative server per operator, serving its domains."""
    servers: dict[str, AuthoritativeServer] = {}
    for spec in domains:
        server = servers.get(spec.operator)
        if server is None:
            server = AuthoritativeServer(clock, faults=faults)
            servers[spec.operator] = server
        policy = scope_policy_for(spec.operator, rng, scope_flip_probability,
                                  scope_shift)
        server.add_zone(
            Zone(name=spec.name, ttl=spec.ttl, supports_ecs=spec.supports_ecs,
                 scope_policy=policy)
        )
    directory = AuthoritativeDirectory(list(servers.values()))
    return directory, servers


def probe_domains(domains: list[DomainSpec]) -> list[DomainSpec]:
    """§3.1.1's probe set: ECS-supporting domains with TTL > 60 s among
    the top-ranked, plus the Microsoft CDN validation domain."""
    eligible = [d for d in domains if d.supports_ecs and d.ttl > 60.0]
    top = sorted(
        (d for d in eligible if d.operator != "microsoft"),
        key=lambda d: d.rank,
    )[:4]
    microsoft = [d for d in eligible if d.operator == "microsoft"]
    return top + microsoft[:1]
