"""MaxMind-style geolocation database.

§3.1.1 uses MaxMind to place each /24 and derives per-PoP probing sets
from the location *plus its error radius*; the paper only trusts
prefixes with error radius under 200 km for calibration.  We model a
database whose entries are the true block locations perturbed by a
sampled error, with an *advertised* error radius that is itself only an
estimate — and occasional grossly wrong entries (geolocation databases
are known to be weak outside end-user space [16]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.geo import GeoPoint, jitter_point
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


@dataclass(frozen=True, slots=True)
class GeoEntry:
    """One database row: claimed location, claimed accuracy, country."""

    location: GeoPoint
    error_radius_km: float
    country: str

    def __post_init__(self) -> None:
        if self.error_radius_km < 0:
            raise ValueError("error radius must be non-negative")


@dataclass(frozen=True, slots=True)
class GeoAccuracy:
    """Error model used when deriving a database from ground truth.

    Geolocation databases are markedly better at end-user space than
    at infrastructure and idle space [16] — the paper's motivating
    geolocation use case — so the coarse-entry rate differs by what
    the prefix holds.
    """

    typical_error_km: float = 30.0       # median placement error
    advertised_radius_km: float = 50.0   # typical claimed radius
    coarse_fraction: float = 0.05        # client space: rare gross errors
    coarse_fraction_infrastructure: float = 0.35  # infra/idle space
    coarse_error_km: float = 800.0
    coarse_radius_km: float = 500.0
    missing_fraction: float = 0.0        # prefixes the database lacks


class GeoDatabase:
    """Longest-prefix-match geolocation lookups."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[GeoEntry] = PrefixTrie()

    def add(self, prefix: Prefix, entry: GeoEntry) -> None:
        """Insert an entry at exactly this prefix."""
        self._trie.insert(prefix, entry)

    def locate_prefix(self, prefix: Prefix) -> GeoEntry | None:
        """The entry covering all of ``prefix``, or None."""
        return self._trie.lookup_prefix(prefix)

    def locate_address(self, address: int) -> GeoEntry | None:
        """Longest-prefix-match entry for an address, or None."""
        return self._trie.lookup(address)

    def __len__(self) -> int:
        return len(self._trie)

    @classmethod
    def from_truth(
        cls,
        truth: "list[tuple[Prefix, GeoPoint, str]] | list[tuple[Prefix, GeoPoint, str, str]]",
        rng: random.Random,
        accuracy: GeoAccuracy | None = None,
    ) -> "GeoDatabase":
        """Derive a noisy database from ground truth.

        Entries are ``(prefix, true location, country)`` or
        ``(prefix, true location, country, kind)`` where ``kind`` is
        ``"client"`` (end-user space, accurate) or anything else
        (infrastructure/idle space, coarse far more often).
        """
        accuracy = accuracy or GeoAccuracy()
        db = cls()
        for entry_tuple in truth:
            prefix, location, country = entry_tuple[:3]
            kind = entry_tuple[3] if len(entry_tuple) > 3 else "client"
            if (accuracy.missing_fraction
                    and rng.random() < accuracy.missing_fraction):
                continue  # the database simply has no row
            coarse_fraction = (
                accuracy.coarse_fraction if kind == "client"
                else accuracy.coarse_fraction_infrastructure
            )
            if rng.random() < coarse_fraction:
                error_km = accuracy.coarse_error_km
                radius = accuracy.coarse_radius_km
            else:
                error_km = accuracy.typical_error_km
                radius = accuracy.advertised_radius_km
            claimed = jitter_point(location, error_km, rng)
            # Advertised radius wobbles around the configured figure.
            advertised = radius * (0.5 + rng.random())
            db.add(prefix, GeoEntry(claimed, advertised, country))
        return db
