"""ASdb-style AS categorisation.

§4 uses ASdb [38] to characterise the 29,973 ASes its techniques find
but APNIC misses: 92.7% of them are categorised, 39.5% are ISPs, 17.4%
hosting/cloud, 6.2% education.  We model ASdb as a lookup over the
generator's ground-truth categories with imperfect coverage and a
small mislabelling rate.
"""

from __future__ import annotations

import random

from repro.net.asn import ASCategory
from repro.world.builder import World

#: ASdb's human-readable top-level labels for our categories.
CATEGORY_LABELS: dict[ASCategory, str] = {
    ASCategory.ISP: "Internet Service Provider (ISP)",
    ASCategory.HOSTING: "Hosting and Cloud Provider",
    ASCategory.EDUCATION: "Education and Research",
    ASCategory.ENTERPRISE: "Enterprise",
    ASCategory.CONTENT: "Content and Media",
    ASCategory.GOVERNMENT: "Government and Public Administration",
    ASCategory.NONPROFIT: "Non-Profit",
}


class AsdbSnapshot:
    """A categorisation snapshot with configurable coverage."""

    def __init__(
        self,
        world: World,
        seed: int = 31,
        coverage: float = 0.927,
        mislabel_rate: float = 0.03,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage out of [0, 1]")
        if not 0.0 <= mislabel_rate <= 1.0:
            raise ValueError("mislabel_rate out of [0, 1]")
        rng = random.Random(seed)
        self._labels: dict[int, str] = {}
        categories = list(CATEGORY_LABELS)
        for record in world.registry:
            if rng.random() >= coverage:
                continue  # ASdb never categorised this AS
            category = record.category
            if rng.random() < mislabel_rate:
                category = rng.choice(categories)
            self._labels[record.asn] = CATEGORY_LABELS[category]

    def lookup(self, asn: int) -> str | None:
        """The ASdb label for ``asn``, or None if uncategorised."""
        return self._labels.get(asn)

    def categorised(self, asns: set[int]) -> dict[int, str]:
        """Labels for the subset of ``asns`` ASdb knows about."""
        return {asn: self._labels[asn] for asn in asns if asn in self._labels}

    def breakdown(self, asns: set[int]) -> dict[str, int]:
        """Label histogram over ``asns`` (uncategorised ASes omitted)."""
        counts: dict[str, int] = {}
        for asn in asns:
            label = self._labels.get(asn)
            if label is not None:
                counts[label] = counts.get(label, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._labels)
