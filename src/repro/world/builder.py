"""Synthetic Internet generation.

:class:`WorldBuilder` turns a :class:`WorldConfig` into a fully wired
:class:`World`: countries populated with eyeball ASes announcing
prefixes, /24 client blocks with users placed near real cities, ISP
recursive resolvers, hosting ASes full of bots and empty space, the
anycast public resolver with its 45-PoP deployment, root servers, the
authoritative servers of the probe domains, and the Microsoft-like CDN.

Ground truth (who actually has clients where) is retained on the
:class:`World`, so the measurement techniques built on top can be
scored exactly — the luxury the paper lacked.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.net.asn import ASCategory, ASRecord, ASRegistry
from repro.net.geo import GeoPoint, jitter_point
from repro.net.ipv4 import is_reserved
from repro.net.prefix import Prefix
from repro.net.routing import RouteTable
from repro.dns.anycast import AnycastCatchment
from repro.dns.public_dns import AuthoritativeDirectory, PublicDnsService
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.dns.root import RootServerSystem
from repro.sim.clock import Clock
from repro.sim.faults import FaultConfig, FaultInjector
from repro.world.cdn import CdnService
from repro.world.countries import COUNTRIES, Country
from repro.world.domains_catalog import (
    MICROSOFT_CDN_DOMAIN,
    build_authoritatives,
    default_domains,
    probe_domains,
)
from repro.world.geodata import GeoAccuracy, GeoDatabase
from repro.world.model import ClientBlock, DomainSpec, PopDescriptor
from repro.world.pops import default_pops


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Knobs for world generation.

    ``target_blocks`` is the approximate number of /24 *client blocks*
    (active /24s); announced-but-empty space comes on top, governed by
    each AS's activity fraction.
    """

    seed: int = 42
    target_blocks: int = 4000
    countries: tuple[Country, ...] = COUNTRIES
    mean_users_per_block: float = 60.0
    hosting_as_fraction: float = 0.18
    empty_as_fraction: float = 0.06
    resolver_ecs_share: float = 0.30
    pools_per_pop: int = 3
    anycast_inflation: float = 0.12
    scope_flip_probability: float = 0.08
    scope_shift: int = 3  # scopes finer by 3 bits: the world is small
    geo_accuracy: GeoAccuracy = field(default_factory=GeoAccuracy)
    #: Opt-in network unreliability; the all-zero default injects
    #: nothing and leaves every run bit-identical to a fault-free one.
    faults: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        if self.target_blocks < 10:
            raise ValueError("target_blocks must be at least 10")
        if not 0 <= self.hosting_as_fraction < 1:
            raise ValueError("hosting_as_fraction out of range")


#: First octets never handed out (reserved or multicast space).
_FORBIDDEN_OCTETS = frozenset(
    # 8/8 is reserved for the public resolver operator's egress
    # addresses (8.8.x.y), handed to its AS explicitly.
    {0, 8, 10, 100, 127, 169, 172, 192, 198, 203} | set(range(224, 256))
)


class AddressAllocator:
    """Hands out aligned prefixes, clustered by region.

    Real address space is regionally clustered (RIR allocations), which
    matters to the techniques: an authoritative's coarse ECS scope (say
    a /16) must not leak across continents.  Each region key (we use
    country codes) draws from its own dedicated /8s.
    """

    def __init__(self) -> None:
        self._next_octet = 1
        # Per region: (cursor, end-of-current-/8).
        self._regions: dict[str, tuple[int, int]] = {}

    def _fresh_slash8(self) -> tuple[int, int]:
        while self._next_octet in _FORBIDDEN_OCTETS:
            self._next_octet += 1
        if self._next_octet > 223:
            raise RuntimeError("address space exhausted")
        base = self._next_octet << 24
        self._next_octet += 1
        return base, base + (1 << 24)

    def allocate(self, length: int, region: str = "global") -> Prefix:
        """The next free aligned /``length`` prefix in ``region``'s space."""
        if not 8 <= length <= 24:
            raise ValueError(f"allocation length /{length} unsupported")
        size = 1 << (32 - length)
        cursor, limit = self._regions.get(region) or self._fresh_slash8()
        cursor = (cursor + size - 1) & ~(size - 1)
        if cursor + size > limit:
            cursor, limit = self._fresh_slash8()
        prefix = Prefix(cursor, length)
        if is_reserved(prefix.first_address()) or is_reserved(prefix.last_address()):
            raise RuntimeError(f"allocator produced reserved prefix {prefix}")
        self._regions[region] = (cursor + size, limit)
        return prefix


@dataclass
class World:
    """A fully wired synthetic Internet."""

    config: WorldConfig
    clock: Clock
    countries: tuple[Country, ...]
    registry: ASRegistry
    routes: RouteTable
    blocks: list[ClientBlock]
    resolvers: dict[int, RecursiveResolver]
    geodb: GeoDatabase
    domains: list[DomainSpec]
    authoritatives: AuthoritativeDirectory
    authoritative_servers: dict[str, object]
    public_dns: PublicDnsService
    roots: RootServerSystem
    cdn: CdnService
    pop_descriptors: list[PopDescriptor]
    user_catchment: AnycastCatchment
    cloud_catchment: AnycastCatchment
    google_asn: int
    cloud_asn: int
    #: ground-truth geolocation of every placed prefix:
    #: (prefix, true location, country, kind) where kind is "client",
    #: "idle" or "infrastructure" — what the geodb's entries are noisy
    #: versions of.
    geo_truth: list[tuple[Prefix, GeoPoint, str, str]] = field(
        default_factory=list)
    #: the shared fault injector wired through the DNS path (None only
    #: for hand-built worlds that skip the builder).
    faults: FaultInjector | None = None

    # -- ground truth helpers -------------------------------------------

    def block_by_slash24(self, slash24: int) -> ClientBlock | None:
        """The client block at a /24 id, or None."""
        return self._block_index().get(slash24)

    def _block_index(self) -> dict[int, ClientBlock]:
        index = self.__dict__.get("_block_index_cache")
        if index is None:
            index = {b.slash24: b for b in self.blocks}
            self.__dict__["_block_index_cache"] = index
        return index

    def client_blocks(self) -> list[ClientBlock]:
        """Blocks that truly contain web clients (users or bots)."""
        return [b for b in self.blocks if b.has_clients]

    def client_slash24_ids(self) -> set[int]:
        """/24 ids of every block with clients."""
        return {b.slash24 for b in self.client_blocks()}

    def user_slash24_ids(self) -> set[int]:
        """/24 ids of every block with human users."""
        return {b.slash24 for b in self.blocks if b.users > 0}

    def asns_with_clients(self) -> set[int]:
        """ASNs owning at least one client block."""
        return {b.asn for b in self.client_blocks()}

    def true_users_by_asn(self) -> dict[int, int]:
        """Ground-truth user counts per ASN."""
        totals: dict[int, int] = {}
        for block in self.blocks:
            if block.users:
                totals[block.asn] = totals.get(block.asn, 0) + block.users
        return totals

    def true_users_by_country(self) -> dict[str, int]:
        """Ground-truth user counts per country."""
        totals: dict[str, int] = {}
        for block in self.blocks:
            if block.users:
                totals[block.country] = totals.get(block.country, 0) + block.users
        return totals

    def resolver_of_block(self, block: ClientBlock) -> RecursiveResolver:
        """The resolver a block's clients use."""
        return self.resolvers[block.resolver_ip]


class WorldBuilder:
    """Generates a :class:`World` from a :class:`WorldConfig`."""

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        self._rng = random.Random(self.config.seed)
        self._allocator = AddressAllocator()
        self._next_asn = 64500
        self._operator_blocks: list[ClientBlock] = []
        self._operator_geo: list[tuple[Prefix, GeoPoint, str, str]] = []

    # -- public entry point ----------------------------------------------

    def build(self) -> World:
        """Generate the fully wired world."""
        config = self.config
        rng = self._rng
        clock = Clock()
        registry = ASRegistry()
        blocks: list[ClientBlock] = []
        resolver_plan: list[tuple[int, GeoPoint, int, bool]] = []
        geo_truth: list[tuple[Prefix, GeoPoint, str, str]] = []

        country_blocks = self._country_block_quota()
        for country in config.countries:
            self._build_country(
                country,
                country_blocks[country.code],
                registry,
                blocks,
                resolver_plan,
                geo_truth,
                rng,
            )
        self._build_hosting_ases(registry, blocks, geo_truth, rng)
        # Operator ASes (the public resolver, the cloud) host non-human
        # clients of their own — crawlers and workloads that also fetch
        # from CDNs — so they appear in CDN client logs, as §B.3's
        # Google-AS weights imply.
        google_asn = self._build_operator_as(
            registry, "GooglePublicDNS", "US",
            # The public resolver's egress addresses live in 8.8.0.0/16
            # (see PublicDnsService's per-PoP egress assignment).
            announce=Prefix(0x08080000, 16),
        )
        cloud_asn = self._build_operator_as(registry, "CloudProvider", "US",
                                            length=16)

        blocks.extend(self._operator_blocks)
        geo_truth.extend(self._operator_geo)
        routes = RouteTable.from_registry(registry)
        geodb = GeoDatabase.from_truth(geo_truth, rng, config.geo_accuracy)

        pop_descriptors = default_pops()
        user_catchment = AnycastCatchment(
            [d.pop for d in pop_descriptors],
            seed=config.seed,
            inflation=config.anycast_inflation,
        )
        cloud_catchment = AnycastCatchment(
            [d.pop for d in pop_descriptors
             if d.cloud_reachable and d.active],
            seed=config.seed,
            inflation=config.anycast_inflation,
        )

        domains = default_domains()
        fault_injector = FaultInjector(config.faults, clock)
        authoritatives, servers = build_authoritatives(
            clock, domains, rng, config.scope_flip_probability,
            config.scope_shift, faults=fault_injector,
        )
        roots = RootServerSystem(clock, seed=config.seed + 1)
        public_dns = PublicDnsService(
            clock,
            user_catchment,
            authoritatives,
            seed=config.seed + 2,
            pools_per_pop=config.pools_per_pop,
            roots=roots,
            extra_catchments={"cloud": cloud_catchment},
            faults=fault_injector,
        )
        resolvers = self._build_resolvers(
            clock, roots, authoritatives, resolver_plan
        )
        cdn = CdnService(
            clock,
            domain=MICROSOFT_CDN_DOMAIN,
            authoritative=servers["microsoft"],
        )
        world = World(
            config=config,
            clock=clock,
            countries=config.countries,
            registry=registry,
            routes=routes,
            blocks=blocks,
            resolvers=resolvers,
            geodb=geodb,
            domains=domains,
            authoritatives=authoritatives,
            authoritative_servers=servers,
            public_dns=public_dns,
            roots=roots,
            cdn=cdn,
            pop_descriptors=pop_descriptors,
            user_catchment=user_catchment,
            cloud_catchment=cloud_catchment,
            google_asn=google_asn,
            cloud_asn=cloud_asn,
            geo_truth=geo_truth,
            faults=fault_injector,
        )
        return world

    # -- per-country generation ------------------------------------------

    def _country_block_quota(self) -> dict[str, int]:
        config = self.config
        total_weight = sum(c.internet_users_m for c in config.countries)
        return {
            c.code: max(4, round(config.target_blocks * c.internet_users_m
                                 / total_weight))
            for c in config.countries
        }

    def _build_country(
        self,
        country: Country,
        quota: int,
        registry: ASRegistry,
        blocks: list[ClientBlock],
        resolver_plan: list[tuple[int, GeoPoint, int, bool]],
        geo_truth: list[tuple[Prefix, GeoPoint, str]],
        rng: random.Random,
    ) -> None:
        # Heavy-tailed AS sizes: a few large ISPs and a long tail of
        # tiny ASes (which APNIC's sampling and the resolver-based
        # techniques tend to miss, per §4).
        as_count = max(2, int(quota ** 0.75))
        weights = [1.0 / (i + 1) ** 1.15 for i in range(as_count)]
        weight_sum = sum(weights)
        shares = [w / weight_sum for w in weights]
        remaining = quota
        resolver_pool: list[int] = []
        for index in range(as_count):
            active_quota = max(1, round(quota * shares[index]))
            active_quota = min(active_quota, remaining) if index < as_count - 1 \
                else max(1, remaining)
            remaining = max(0, remaining - active_quota)
            category = self._pick_eyeball_category(rng)
            record = self._new_as(registry, country.code, category)
            self._populate_eyeball_as(
                record, country, active_quota, blocks, resolver_plan,
                geo_truth, rng, resolver_pool,
            )
            if remaining <= 0 and index >= 1:
                break

    def _pick_eyeball_category(self, rng: random.Random) -> ASCategory:
        roll = rng.random()
        if roll < 0.68:
            return ASCategory.ISP
        if roll < 0.82:
            return ASCategory.ENTERPRISE
        if roll < 0.94:
            return ASCategory.EDUCATION
        return ASCategory.GOVERNMENT

    def _new_as(
        self, registry: ASRegistry, country: str, category: ASCategory
    ) -> ASRecord:
        asn = self._next_asn
        self._next_asn += 1
        record = ASRecord(
            asn=asn,
            name=f"{category.value}-{country}-{asn}".lower(),
            category=category,
            country=country,
        )
        registry.add(record)
        return record

    def _populate_eyeball_as(
        self,
        record: ASRecord,
        country: Country,
        active_quota: int,
        blocks: list[ClientBlock],
        resolver_plan: list[tuple[int, GeoPoint, int, bool]],
        geo_truth: list[tuple[Prefix, GeoPoint, str, str]],
        rng: random.Random,
        resolver_pool: list[int],
    ) -> None:
        config = self.config
        # The fraction of announced /24s that actually host clients
        # varies widely across ASes (Figure 4), but overall client
        # density in routed space is high (~73% of routed /24s contact
        # the CDN daily): right-leaning Beta with a low tail.
        active_fraction = max(0.08, min(1.0, rng.betavariate(1.5, 0.55)))
        announced_quota = max(active_quota,
                              math.ceil(active_quota / active_fraction))
        slots = self._announce_space(record, announced_quota, rng,
                                     region=country.code)
        rng.shuffle(slots)
        active_slots = slots[:active_quota]
        slot_locations = [self._pick_location(country, rng)
                          for _ in active_slots]
        resolver_ips = self._place_resolvers(
            record, country, active_slots, slot_locations, active_quota,
            resolver_plan, geo_truth, rng, resolver_pool,
        )

        for slot, location in zip(active_slots, slot_locations):
            blocks.append(ClientBlock(
                prefix=slot,
                asn=record.asn,
                country=country.code,
                location=location,
                users=max(5, int(rng.lognormvariate(
                    math.log(config.mean_users_per_block), 0.8))),
                bots=rng.randrange(3) if rng.random() < 0.1 else 0,
                resolver_ip=rng.choice(resolver_ips),
                google_dns_share=self._jitter_share(
                    country.google_dns_share, rng),
                chromium_share=self._jitter_share(country.chromium_share, rng),
            ))
            geo_truth.append((slot, location, country.code, "client"))
        # Empty announced /24s still geolocate (usually poorly).
        for slot in slots[active_quota:]:
            geo_truth.append(
                (slot, self._pick_location(country, rng), country.code,
                 "idle")
            )

    def _place_resolvers(
        self,
        record: ASRecord,
        country: Country,
        active_slots: list[Prefix],
        slot_locations: list[GeoPoint],
        active_quota: int,
        resolver_plan: list[tuple[int, GeoPoint, int, bool]],
        geo_truth: list[tuple[Prefix, GeoPoint, str, str]],
        rng: random.Random,
        resolver_pool: list[int],
    ) -> list[int]:
        """Decide where this AS's clients resolve.

        Large ASes run their own recursive resolvers, usually hosted
        inside address pools shared with clients (which is why §4 finds
        95.5% of DNS-logs /24s also in the CDN client logs), sometimes
        in a dedicated infrastructure /24.  Small ASes do not run
        resolvers: their clients use an upstream provider's resolver in
        the same country — attributing their Chromium probes to the
        *upstream's* AS — or a public resolver (``resolver_ip`` 0 means
        Google).  These are exactly the ASes DNS logs misses.
        """
        config = self.config
        runs_own = bool(active_slots) and (active_quota >= 3
                                           or rng.random() < 0.5)
        if not runs_own:
            # No resolver of its own: clients use an upstream
            # provider's resolver or a public one.
            if resolver_pool and rng.random() < 0.6:
                return [rng.choice(resolver_pool)]
            return [0]
        resolver_count = max(1, active_quota // 40)
        sends_ecs = rng.random() < config.resolver_ecs_share
        resolver_ips: list[int] = []
        for index in range(resolver_count):
            if rng.random() < 0.92:
                # Hosted inside a client /24.
                host_index = rng.randrange(len(active_slots))
                host = active_slots[host_index]
                location = slot_locations[host_index]
                ip = host.network + 250 + (index % 5)
            else:
                # Dedicated infrastructure /24.
                infra = self._allocator.allocate(24, region=country.code)
                record.announce(infra)
                location = self._pick_location(country, rng)
                geo_truth.append((infra, location, country.code,
                                  "infrastructure"))
                ip = infra.network + 10 + index
            if ip in (plan_ip for plan_ip, *_ in resolver_plan):
                continue
            resolver_plan.append((ip, location, record.asn, sends_ecs))
            resolver_ips.append(ip)
        resolver_pool.extend(resolver_ips)
        return resolver_ips or [0]

    def _announce_space(
        self, record: ASRecord, slash24_quota: int, rng: random.Random,
        region: str = "global",
    ) -> list[Prefix]:
        """Announce prefixes totalling ``slash24_quota`` /24s; return
        the individual /24 slots."""
        slots: list[Prefix] = []
        remaining = slash24_quota
        while remaining > 0:
            max_bits = min(6, remaining.bit_length() - 1)
            bits = rng.randint(0, max_bits) if max_bits > 0 else 0
            chunk = self._allocator.allocate(24 - bits, region=region)
            record.announce(chunk)
            slots.extend(chunk.slash24s())
            remaining -= 1 << bits
        return slots

    def _pick_location(self, country: Country, rng: random.Random) -> GeoPoint:
        weights = [c.weight for c in country.cities]
        city = rng.choices(country.cities, weights=weights, k=1)[0]
        return jitter_point(city.location, 40.0, rng)

    @staticmethod
    def _jitter_share(share: float, rng: random.Random) -> float:
        return max(0.0, min(1.0, share + rng.uniform(-0.08, 0.08)))

    # -- hosting / empty ASes -----------------------------------------------

    def _build_hosting_ases(
        self,
        registry: ASRegistry,
        blocks: list[ClientBlock],
        geo_truth: list[tuple[Prefix, GeoPoint, str]],
        rng: random.Random,
    ) -> None:
        config = self.config
        eyeball_count = len(registry)
        hosting_count = max(2, int(eyeball_count * config.hosting_as_fraction))
        empty_count = max(1, int(eyeball_count * config.empty_as_fraction))
        hubs = [c for c in config.countries
                if c.code in {"US", "DE", "NL", "SG", "GB", "JP", "FR", "IN"}]
        if not hubs:
            hubs = list(config.countries)
        for index in range(hosting_count + empty_count):
            country = rng.choice(hubs)
            category = (ASCategory.HOSTING if index < hosting_count
                        else rng.choice((ASCategory.CONTENT,
                                         ASCategory.ENTERPRISE)))
            record = self._new_as(registry, country.code, category)
            announced = rng.randint(3, 24) if index < hosting_count \
                else rng.randint(2, 8)
            slots = self._announce_space(record, announced, rng,
                                         region=country.code)
            is_empty_as = index >= hosting_count
            for slot in slots:
                location = self._pick_location(country, rng)
                kind = "idle" if is_empty_as else "client"
                geo_truth.append((slot, location, country.code, kind))
                if is_empty_as or rng.random() > 0.5:
                    continue  # most hosting space has no web *clients*
                blocks.append(ClientBlock(
                    prefix=slot,
                    asn=record.asn,
                    country=country.code,
                    location=location,
                    users=0,
                    bots=rng.randint(2, 25),
                    resolver_ip=0,  # bots resolve via public DNS
                    google_dns_share=1.0,
                    chromium_share=0.0,
                ))

    def _build_operator_as(
        self, registry: ASRegistry, name: str, country: str,
        length: int = 20, announce: Prefix | None = None,
        bot_blocks: int = 3,
    ) -> int:
        record = self._new_as(registry, country, ASCategory.CONTENT)
        record.name = name.lower()
        prefix = (announce if announce is not None
                  else self._allocator.allocate(length, region="operators"))
        record.announce(prefix)
        location = GeoPoint(37.4, -122.0)  # operator HQ region
        slots = list(prefix.slash24s())
        for slot in slots[1:1 + bot_blocks]:
            self._operator_blocks.append(ClientBlock(
                prefix=slot,
                asn=record.asn,
                country=country,
                location=location,
                users=0,
                bots=self._rng.randint(4, 20),
                resolver_ip=0,
                google_dns_share=1.0,
                chromium_share=0.0,
            ))
            self._operator_geo.append((slot, location, country,
                                       "infrastructure"))
        return record.asn

    # -- resolvers ---------------------------------------------------------

    def _build_resolvers(
        self,
        clock: Clock,
        roots: RootServerSystem,
        authoritatives: AuthoritativeDirectory,
        plan: list[tuple[int, GeoPoint, int, bool]],
    ) -> dict[int, RecursiveResolver]:
        resolvers: dict[int, RecursiveResolver] = {}
        for ip, location, asn, sends_ecs in plan:
            resolvers[ip] = RecursiveResolver(
                clock=clock,
                ip=ip,
                location=location,
                asn=asn,
                roots=roots,
                authoritatives=authoritatives,
                config=ResolverConfig(sends_ecs=sends_ecs),
            )
        return resolvers


def build_world(config: WorldConfig | None = None) -> World:
    """Convenience one-shot builder."""
    return WorldBuilder(config).build()
