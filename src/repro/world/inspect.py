"""World inspection: summary statistics of a synthetic Internet.

Research code keeps asking the same questions of a world — how many
ASes per category, client density, resolver placement, user mass per
country.  :func:`describe_world` answers them in one structured
object, used by examples and by anyone calibrating a custom
:class:`~repro.world.builder.WorldConfig`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.net.asn import ASCategory
from repro.world.builder import World


@dataclass(slots=True)
class WorldSummary:
    """Aggregate statistics of one world."""

    total_ases: int
    ases_by_category: dict[str, int]
    routed_slash24s: int
    client_slash24s: int
    user_slash24s: int
    bot_only_slash24s: int
    total_users: int
    total_bots: int
    resolvers: int
    resolvers_in_client_blocks: int
    users_by_country: dict[str, int] = field(default_factory=dict)
    active_pops: int = 0
    cloud_reachable_pops: int = 0

    @property
    def client_density(self) -> float:
        """Share of routed /24s that truly hold clients."""
        if self.routed_slash24s == 0:
            return 0.0
        return self.client_slash24s / self.routed_slash24s

    def render(self) -> str:
        """Fixed-width text rendering."""
        categories = ", ".join(
            f"{name}={count}" for name, count
            in sorted(self.ases_by_category.items(), key=lambda kv: -kv[1])
        )
        top = sorted(self.users_by_country.items(),
                     key=lambda kv: -kv[1])[:5]
        return "\n".join([
            "World summary",
            f"  ASes: {self.total_ases} ({categories})",
            f"  routed /24s: {self.routed_slash24s}; client /24s: "
            f"{self.client_slash24s} (density {self.client_density:.0%}; "
            f"{self.user_slash24s} with users, "
            f"{self.bot_only_slash24s} bot-only)",
            f"  population: {self.total_users:,} users, "
            f"{self.total_bots:,} bots",
            f"  resolvers: {self.resolvers} "
            f"({self.resolvers_in_client_blocks} hosted in client /24s)",
            f"  top countries by users: "
            + ", ".join(f"{c}={u:,}" for c, u in top),
            f"  PoPs: {self.active_pops} active, "
            f"{self.cloud_reachable_pops} cloud-reachable",
        ])


def describe_world(world: World) -> WorldSummary:
    """Compute a :class:`WorldSummary` for ``world``."""
    category_counts: Counter[str] = Counter(
        record.category.value for record in world.registry
    )
    client_ids = world.client_slash24_ids()
    user_ids = world.user_slash24_ids()
    resolvers_in_clients = sum(
        1 for ip in world.resolvers if (ip >> 8) in client_ids
    )
    return WorldSummary(
        total_ases=len(world.registry),
        ases_by_category=dict(category_counts),
        routed_slash24s=len(set(world.routes.routed_slash24_ids())),
        client_slash24s=len(client_ids),
        user_slash24s=len(user_ids),
        bot_only_slash24s=len(client_ids - user_ids),
        total_users=sum(b.users for b in world.blocks),
        total_bots=sum(b.bots for b in world.blocks),
        resolvers=len(world.resolvers),
        resolvers_in_client_blocks=resolvers_in_clients,
        users_by_country=dict(world.true_users_by_country()),
        active_pops=sum(1 for d in world.pop_descriptors if d.active),
        cloud_reachable_pops=sum(
            1 for d in world.pop_descriptors
            if d.active and d.cloud_reachable
        ),
    )


def category_of(world: World, asn: int) -> ASCategory | None:
    """Convenience: an AS's ground-truth category, or None."""
    record = world.registry.get(asn)
    return None if record is None else record.category
