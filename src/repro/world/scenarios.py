"""Named world scenarios.

Pre-packaged :class:`~repro.world.builder.WorldConfig` variants for the
what-if questions the paper's design raises.  Each scenario changes
one mechanism against the default world so its effect is attributable;
the ablation benchmarks use the same knobs ad hoc — these give them
stable names for interactive exploration.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.world.builder import WorldConfig
from repro.world.geodata import GeoAccuracy


def default(seed: int = 42, **overrides) -> WorldConfig:
    """The standard world (see WorldConfig for the defaults)."""
    return WorldConfig(seed=seed, **overrides)


def oracle_anycast(seed: int = 42, **overrides) -> WorldConfig:
    """Anycast always picks the nearest PoP — the best case §3.1.1's
    calibration stage exists to approximate."""
    return WorldConfig(seed=seed, anycast_inflation=0.0, **overrides)


def chaotic_anycast(seed: int = 42, **overrides) -> WorldConfig:
    """Heavy path inflation: a third of clients skip their nearest PoP,
    stressing the service-radius machinery."""
    return WorldConfig(seed=seed, anycast_inflation=0.35, **overrides)


def single_cache_pool(seed: int = 42, **overrides) -> WorldConfig:
    """One cache pool per PoP: redundant queries buy nothing, so any
    probing budget spent on redundancy is wasted here."""
    return WorldConfig(seed=seed, pools_per_pop=1, **overrides)


def many_cache_pools(seed: int = 42, **overrides) -> WorldConfig:
    """Six pools per PoP: single probes mostly miss, redundancy is
    essential — the regime that justified the paper's 5 queries."""
    return WorldConfig(seed=seed, pools_per_pop=6, **overrides)


def stable_scopes(seed: int = 42, **overrides) -> WorldConfig:
    """Authoritatives never shift response scopes: Table 2 becomes
    100% exact and the scope-reduction plan never goes stale."""
    return WorldConfig(seed=seed, scope_flip_probability=0.0, **overrides)


def coarse_geolocation(seed: int = 42, **overrides) -> WorldConfig:
    """A bad geolocation database: placements off by hundreds of km and
    a third of rows simply missing — PoP assignment degrades towards
    probing everything everywhere."""
    return WorldConfig(
        seed=seed,
        geo_accuracy=GeoAccuracy(
            typical_error_km=150.0,
            advertised_radius_km=250.0,
            coarse_fraction=0.3,
            coarse_fraction_infrastructure=0.6,
            missing_fraction=0.3,
        ),
        **overrides,
    )


#: All named scenarios, for CLI-style enumeration.
SCENARIOS: dict[str, Callable[..., WorldConfig]] = {
    "default": default,
    "oracle-anycast": oracle_anycast,
    "chaotic-anycast": chaotic_anycast,
    "single-cache-pool": single_cache_pool,
    "many-cache-pools": many_cache_pools,
    "stable-scopes": stable_scopes,
    "coarse-geolocation": coarse_geolocation,
}


def scenario(name: str, seed: int = 42, **overrides) -> WorldConfig:
    """Look up a scenario by name; KeyError lists the valid names."""
    factory = SCENARIOS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown scenario {name!r}; valid: {sorted(SCENARIOS)}"
        )
    return factory(seed=seed, **overrides)


def describe(name: str) -> str:
    """The scenario's one-paragraph description (its docstring)."""
    return (SCENARIOS[name].__doc__ or "").strip()


def compare(name: str, seed: int = 42) -> dict[str, tuple]:
    """Fields where the scenario differs from the default config."""
    base = default(seed=seed)
    other = scenario(name, seed=seed)
    changed = {}
    for field in dataclasses.fields(WorldConfig):
        a = getattr(base, field.name)
        b = getattr(other, field.name)
        if a != b:
            changed[field.name] = (a, b)
    return changed
