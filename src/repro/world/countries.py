"""Country table for the synthetic Internet.

Internet-user counts are rough real-world figures (millions, circa
2021) used as *weights*; the world builder scales them down to the
configured world size.  Cities anchor where client prefixes geolocate,
so regional density (Figure 1) and PoP service radii (Figure 2) have
realistic geography to work against.

Per-country behavioural knobs model the adoption skews the paper
discusses: Google Public DNS share varies (China very low), Chromium
share varies, and APNIC's ad reach is uneven — the sources of
disagreement between the datasets in §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.geo import GeoPoint


@dataclass(frozen=True, slots=True)
class City:
    """A population centre anchoring client geolocation."""
    name: str
    lat: float
    lon: float
    weight: float = 1.0

    @property
    def location(self) -> GeoPoint:
        """The city's coordinates."""
        return GeoPoint(self.lat, self.lon)


@dataclass(frozen=True, slots=True)
class Country:
    """One country with its Internet-population weight and behaviour."""

    code: str
    name: str
    region: str                    # NA, SA, EU, AS, AF, OC
    internet_users_m: float        # millions, real-world scale weight
    cities: tuple[City, ...]
    google_dns_share: float = 0.32  # fraction of queries via Google [9]
    chromium_share: float = 0.70    # Chromium-based browser share
    ad_reach: float = 1.0           # APNIC ad-sampling reachability bias

    def __post_init__(self) -> None:
        if not self.cities:
            raise ValueError(f"{self.code}: country needs at least one city")
        if self.internet_users_m <= 0:
            raise ValueError(f"{self.code}: users must be positive")
        for share in (self.google_dns_share, self.chromium_share, self.ad_reach):
            if not 0.0 <= share <= 1.0:
                raise ValueError(f"{self.code}: share {share} out of [0, 1]")


def _c(name: str, lat: float, lon: float, weight: float = 1.0) -> City:
    return City(name, lat, lon, weight)


#: The default world's countries.  South America gets normal user counts
#: but (see builder) its PoPs are cloud-unreachable, reproducing the
#: paper's Figure 3 coverage gap there.
COUNTRIES: tuple[Country, ...] = (
    # -- North America ----------------------------------------------------
    Country("US", "United States", "NA", 300.0, (
        _c("New York", 40.71, -74.01, 3.0), _c("Los Angeles", 34.05, -118.24, 2.5),
        _c("Chicago", 41.88, -87.63, 1.5), _c("Dallas", 32.78, -96.80, 1.3),
        _c("Seattle", 47.61, -122.33, 1.0), _c("Miami", 25.76, -80.19, 1.2),
        _c("Denver", 39.74, -104.99, 0.7), _c("Atlanta", 33.75, -84.39, 1.1),
    )),
    Country("CA", "Canada", "NA", 35.0, (
        _c("Toronto", 43.65, -79.38, 2.0), _c("Montreal", 45.50, -73.57, 1.3),
        _c("Vancouver", 49.28, -123.12, 1.0),
    )),
    Country("MX", "Mexico", "NA", 90.0, (
        _c("Mexico City", 19.43, -99.13, 3.0), _c("Guadalajara", 20.66, -103.35, 1.0),
        _c("Monterrey", 25.69, -100.32, 1.0),
    ), ad_reach=0.85),
    # -- South America -----------------------------------------------------
    Country("BR", "Brazil", "SA", 160.0, (
        _c("Sao Paulo", -23.55, -46.63, 3.0), _c("Rio de Janeiro", -22.91, -43.17, 2.0),
        _c("Brasilia", -15.79, -47.88, 0.8), _c("Fortaleza", -3.73, -38.52, 1.0),
        _c("Porto Alegre", -30.03, -51.23, 0.8),
    ), ad_reach=0.9),
    Country("AR", "Argentina", "SA", 40.0, (
        _c("Buenos Aires", -34.60, -58.38, 3.0), _c("Cordoba", -31.42, -64.18, 1.0),
    ), ad_reach=0.85),
    Country("CO", "Colombia", "SA", 35.0, (
        _c("Bogota", 4.71, -74.07, 2.5), _c("Medellin", 6.24, -75.58, 1.0),
    ), ad_reach=0.85),
    Country("CL", "Chile", "SA", 15.0, (
        _c("Santiago", -33.45, -70.67, 2.5),
    ), ad_reach=0.9),
    Country("PE", "Peru", "SA", 20.0, (
        _c("Lima", -12.05, -77.04, 2.5),
    ), ad_reach=0.8),
    Country("VE", "Venezuela", "SA", 17.0, (
        _c("Caracas", 10.48, -66.90, 2.0),
    ), ad_reach=0.7),
    Country("EC", "Ecuador", "SA", 10.0, (
        _c("Quito", -0.18, -78.47, 1.5), _c("Guayaquil", -2.19, -79.89, 1.5),
    ), ad_reach=0.8),
    Country("BO", "Bolivia", "SA", 6.0, (
        _c("La Paz", -16.49, -68.12, 1.5),
    ), ad_reach=0.7),
    Country("PY", "Paraguay", "SA", 4.0, (
        _c("Asuncion", -25.26, -57.58, 1.5),
    ), ad_reach=0.7),
    Country("UY", "Uruguay", "SA", 3.0, (
        _c("Montevideo", -34.90, -56.16, 1.5),
    ), ad_reach=0.85),
    # -- Europe ------------------------------------------------------------
    Country("DE", "Germany", "EU", 78.0, (
        _c("Berlin", 52.52, 13.40, 1.5), _c("Frankfurt", 50.11, 8.68, 2.0),
        _c("Munich", 48.14, 11.58, 1.2), _c("Hamburg", 53.55, 9.99, 1.0),
    )),
    Country("GB", "United Kingdom", "EU", 65.0, (
        _c("London", 51.51, -0.13, 3.0), _c("Manchester", 53.48, -2.24, 1.0),
    )),
    Country("FR", "France", "EU", 60.0, (
        _c("Paris", 48.86, 2.35, 3.0), _c("Lyon", 45.76, 4.84, 1.0),
        _c("Marseille", 43.30, 5.37, 0.8),
    )),
    Country("NL", "Netherlands", "EU", 16.0, (
        _c("Amsterdam", 52.37, 4.90, 2.0), _c("Groningen", 53.22, 6.57, 0.5),
    )),
    Country("ES", "Spain", "EU", 43.0, (
        _c("Madrid", 40.42, -3.70, 2.0), _c("Barcelona", 41.39, 2.17, 1.5),
    )),
    Country("IT", "Italy", "EU", 50.0, (
        _c("Milan", 45.46, 9.19, 2.0), _c("Rome", 41.90, 12.50, 1.8),
    )),
    Country("PL", "Poland", "EU", 32.0, (
        _c("Warsaw", 52.23, 21.01, 2.0), _c("Krakow", 50.06, 19.94, 1.0),
    )),
    Country("SE", "Sweden", "EU", 9.5, (
        _c("Stockholm", 59.33, 18.07, 2.0),
    )),
    Country("CH", "Switzerland", "EU", 8.0, (
        _c("Zurich", 47.38, 8.54, 2.0), _c("Geneva", 46.20, 6.14, 1.0),
    )),
    Country("RU", "Russia", "EU", 118.0, (
        _c("Moscow", 55.76, 37.62, 3.0), _c("St Petersburg", 59.93, 30.34, 1.5),
        _c("Novosibirsk", 55.03, 82.92, 0.7),
    ), google_dns_share=0.20, ad_reach=0.8),
    Country("TR", "Turkey", "EU", 70.0, (
        _c("Istanbul", 41.01, 28.98, 3.0), _c("Ankara", 39.93, 32.86, 1.2),
    ), ad_reach=0.9),
    # -- Asia ---------------------------------------------------------------
    Country("CN", "China", "AS", 990.0, (
        _c("Beijing", 39.90, 116.41, 2.5), _c("Shanghai", 31.23, 121.47, 2.5),
        _c("Shenzhen", 22.54, 114.06, 2.0), _c("Chengdu", 30.57, 104.07, 1.5),
    ), google_dns_share=0.03, chromium_share=0.55, ad_reach=0.35),
    Country("IN", "India", "AS", 760.0, (
        _c("Mumbai", 19.08, 72.88, 2.5), _c("Delhi", 28.70, 77.10, 2.5),
        _c("Bangalore", 12.97, 77.59, 2.0), _c("Chennai", 13.08, 80.27, 1.5),
        _c("Kolkata", 22.57, 88.36, 1.5),
    ), google_dns_share=0.40, chromium_share=0.85),
    Country("JP", "Japan", "AS", 117.0, (
        _c("Tokyo", 35.68, 139.69, 3.0), _c("Osaka", 34.69, 135.50, 1.8),
    )),
    Country("KR", "South Korea", "AS", 50.0, (
        _c("Seoul", 37.57, 126.98, 3.0),
    )),
    Country("ID", "Indonesia", "AS", 200.0, (
        _c("Jakarta", -6.21, 106.85, 3.0), _c("Surabaya", -7.26, 112.75, 1.2),
    ), ad_reach=0.85),
    Country("SG", "Singapore", "AS", 5.3, (
        _c("Singapore", 1.35, 103.82, 1.0),
    )),
    Country("TW", "Taiwan", "AS", 22.0, (
        _c("Taipei", 25.03, 121.57, 2.0),
    )),
    Country("TH", "Thailand", "AS", 50.0, (
        _c("Bangkok", 13.76, 100.50, 2.5),
    ), ad_reach=0.9),
    Country("VN", "Vietnam", "AS", 70.0, (
        _c("Hanoi", 21.03, 105.85, 1.5), _c("Ho Chi Minh City", 10.82, 106.63, 2.0),
    ), ad_reach=0.85),
    Country("PH", "Philippines", "AS", 73.0, (
        _c("Manila", 14.60, 120.98, 3.0),
    ), ad_reach=0.85),
    Country("SA", "Saudi Arabia", "AS", 32.0, (
        _c("Riyadh", 24.71, 46.68, 2.0), _c("Jeddah", 21.49, 39.19, 1.2),
    ), ad_reach=0.9),
    Country("IL", "Israel", "AS", 7.5, (
        _c("Tel Aviv", 32.09, 34.78, 2.0),
    )),
    Country("PK", "Pakistan", "AS", 100.0, (
        _c("Karachi", 24.86, 67.00, 2.0), _c("Lahore", 31.55, 74.34, 1.5),
    ), ad_reach=0.7),
    Country("BD", "Bangladesh", "AS", 110.0, (
        _c("Dhaka", 23.81, 90.41, 3.0),
    ), ad_reach=0.7),
    # -- Africa --------------------------------------------------------------
    Country("NG", "Nigeria", "AF", 100.0, (
        _c("Lagos", 6.52, 3.38, 3.0), _c("Abuja", 9.06, 7.50, 1.0),
    ), ad_reach=0.7),
    Country("ZA", "South Africa", "AF", 38.0, (
        _c("Johannesburg", -26.20, 28.05, 2.5), _c("Cape Town", -33.92, 18.42, 1.5),
    ), ad_reach=0.85),
    Country("EG", "Egypt", "AF", 55.0, (
        _c("Cairo", 30.04, 31.24, 3.0),
    ), ad_reach=0.8),
    Country("KE", "Kenya", "AF", 22.0, (
        _c("Nairobi", -1.29, 36.82, 2.5),
    ), ad_reach=0.75),
    # -- additional Europe ---------------------------------------------------
    Country("UA", "Ukraine", "EU", 30.0, (
        _c("Kyiv", 50.45, 30.52, 2.0), _c("Kharkiv", 49.99, 36.23, 1.0),
    ), ad_reach=0.85),
    Country("RO", "Romania", "EU", 16.0, (
        _c("Bucharest", 44.43, 26.10, 2.0),
    )),
    Country("CZ", "Czechia", "EU", 9.0, (
        _c("Prague", 50.08, 14.44, 2.0),
    )),
    Country("PT", "Portugal", "EU", 8.5, (
        _c("Lisbon", 38.72, -9.14, 2.0), _c("Porto", 41.15, -8.61, 1.0),
    )),
    Country("GR", "Greece", "EU", 8.0, (
        _c("Athens", 37.98, 23.73, 2.0),
    )),
    Country("BE", "Belgium", "EU", 10.5, (
        _c("Brussels", 50.85, 4.35, 2.0), _c("Antwerp", 51.22, 4.40, 1.0),
    )),
    Country("AT", "Austria", "EU", 8.0, (
        _c("Vienna", 48.21, 16.37, 2.0),
    )),
    Country("NO", "Norway", "EU", 5.3, (
        _c("Oslo", 59.91, 10.75, 2.0),
    )),
    Country("FI", "Finland", "EU", 5.2, (
        _c("Helsinki", 60.17, 24.94, 2.0),
    )),
    Country("DK", "Denmark", "EU", 5.5, (
        _c("Copenhagen", 55.68, 12.57, 2.0),
    )),
    Country("IE", "Ireland", "EU", 4.5, (
        _c("Dublin", 53.35, -6.26, 2.0),
    )),
    Country("HU", "Hungary", "EU", 8.0, (
        _c("Budapest", 47.50, 19.04, 2.0),
    )),
    # -- additional Asia / Middle East ----------------------------------------
    Country("MY", "Malaysia", "AS", 28.0, (
        _c("Kuala Lumpur", 3.14, 101.69, 2.5),
    ), ad_reach=0.9),
    Country("AE", "United Arab Emirates", "AS", 9.0, (
        _c("Dubai", 25.20, 55.27, 2.0), _c("Abu Dhabi", 24.45, 54.38, 1.0),
    )),
    Country("IR", "Iran", "AS", 60.0, (
        _c("Tehran", 35.69, 51.39, 3.0),
    ), google_dns_share=0.15, ad_reach=0.4),
    Country("LK", "Sri Lanka", "AS", 11.0, (
        _c("Colombo", 6.93, 79.85, 2.0),
    ), ad_reach=0.75),
    # -- additional Africa / Latin America ------------------------------------
    Country("MA", "Morocco", "AF", 25.0, (
        _c("Casablanca", 33.57, -7.59, 2.0), _c("Rabat", 34.02, -6.84, 1.0),
    ), ad_reach=0.75),
    Country("GH", "Ghana", "AF", 12.0, (
        _c("Accra", 5.60, -0.19, 2.0),
    ), ad_reach=0.65),
    Country("TZ", "Tanzania", "AF", 12.0, (
        _c("Dar es Salaam", -6.79, 39.21, 2.0),
    ), ad_reach=0.6),
    Country("GT", "Guatemala", "NA", 9.0, (
        _c("Guatemala City", 14.63, -90.51, 2.0),
    ), ad_reach=0.7),
    Country("DO", "Dominican Republic", "NA", 8.0, (
        _c("Santo Domingo", 18.49, -69.93, 2.0),
    ), ad_reach=0.75),
    Country("CR", "Costa Rica", "NA", 4.0, (
        _c("San Jose", 9.93, -84.08, 2.0),
    ), ad_reach=0.8),
    # -- Oceania --------------------------------------------------------------
    Country("AU", "Australia", "OC", 22.0, (
        _c("Sydney", -33.87, 151.21, 2.0), _c("Melbourne", -37.81, 144.96, 1.8),
        _c("Perth", -31.95, 115.86, 0.8),
    )),
    Country("NZ", "New Zealand", "OC", 4.5, (
        _c("Auckland", -36.85, 174.76, 2.0),
    )),
)


def country_by_code(code: str) -> Country:
    """Look up a country by ISO-like code; KeyError if unknown."""
    for country in COUNTRIES:
        if country.code == code:
            return country
    raise KeyError(f"unknown country {code!r}")


def total_internet_users_m(countries: tuple[Country, ...] = COUNTRIES) -> float:
    """Sum of the countries' user weights, in millions."""
    return sum(c.internet_users_m for c in countries)
