"""Client activity simulation.

Drives everything the measurement techniques can observe: browsing DNS
queries (which populate Google Public DNS caches per ECS prefix and the
ISP resolvers' caches), HTTP requests to the CDN (the *Microsoft
clients* ground truth), CDN DNS sessions (the *Microsoft resolvers*
and *cloud ECS prefixes* datasets), and Chromium interception probes
that leak to the root servers (the *DNS logs* signal).

Time advances in slots; each slot samples per-block Poisson activity
modulated by a diurnal curve in the block's local time.  An optional
``on_slot`` hook lets a measurement (the cache prober) interleave with
ongoing activity, which is exactly how the real 120-hour measurement
ran against the live Internet.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.dns.chromium_client import chromium_probe_names, leaked_label
from repro.dns.message import DnsQuery, Transport
from repro.sim.clock import DAY
from repro.world.builder import World
from repro.world.model import ClientBlock, DomainSpec


@dataclass(frozen=True, slots=True)
class ActivityConfig:
    """Rates are per user per day unless noted."""

    slot_seconds: float = 1800.0
    dns_events_per_user: float = 40.0
    http_requests_per_user: float = 60.0
    chromium_events_per_user: float = 3.0     # startups + network changes
    leak_queries_per_user: float = 0.4        # wpad/typo single labels
    bot_dns_multiplier: float = 5.0           # bots hammer DNS harder
    diurnal_amplitude: float = 0.75           # 0 = flat, 1 = full swing

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude out of [0, 1]")


@dataclass(slots=True)
class ActivityStats:
    """Counters accumulated over a run."""

    slots: int = 0
    dns_queries: int = 0
    google_dns_queries: int = 0
    http_requests: int = 0
    chromium_events: int = 0
    root_queries: int = 0
    per_domain_queries: dict[str, int] = field(default_factory=dict)


def diurnal_factor(utc_seconds: float, lon: float, amplitude: float) -> float:
    """Activity multiplier for local time of day.

    Peaks in the local evening (~20:00), bottoms out around 04:00;
    ``amplitude`` controls the swing.  Mean over a day is ~1.
    """
    local_hours = (utc_seconds / 3600.0 + lon / 15.0) % 24.0
    phase = (local_hours - 20.0) / 24.0 * 2.0 * math.pi
    return max(0.02, 1.0 + amplitude * math.cos(phase))


class ActivitySimulator:
    """Generates world activity slot by slot."""

    def __init__(
        self,
        world: World,
        config: ActivityConfig | None = None,
        seed: int = 7,
    ) -> None:
        self.world = world
        self.config = config or ActivityConfig()
        self._rng = random.Random(seed)
        self.stats = ActivityStats()
        self._bot_domain_shares: dict[int, list] = {}
        # Per-country domain shares, precomputed once.
        self._domain_shares: dict[str, list[tuple[DomainSpec, float]]] = {}
        for country in world.countries:
            weights = [(d, d.weight_in(country.code)) for d in world.domains]
            total = sum(w for _, w in weights) or 1.0
            self._domain_shares[country.code] = [
                (d, w / total) for d, w in weights if w > 0
            ]

    # -- public API ---------------------------------------------------------

    def run(self, duration: float, on_slot=None) -> ActivityStats:
        """Simulate ``duration`` seconds of activity.

        ``on_slot(slot_index, slot_start)`` runs after each slot's
        activity with the clock at the slot's end, letting measurement
        code (the cache prober) interleave with ongoing activity.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        slot = self.config.slot_seconds
        steps = max(1, round(duration / slot))
        for index in range(steps):
            start = self.world.clock.now
            self._simulate_slot(start, slot)
            self.world.clock.advance_to(start + slot)
            self.stats.slots += 1
            if on_slot is not None:
                on_slot(index, start)
        return self.stats

    # -- slot internals -----------------------------------------------------

    def _simulate_slot(self, start: float, slot: float) -> None:
        """Generate one slot's events, executed in timestamp order.

        Event *times* matter: a cache prober at the slot's end must see
        a fresh entry only if a query landed within the record's TTL.
        For a Poisson query stream of rate λ the age of the newest
        query is Exp(λ)-distributed, so representative DNS events are
        stamped ``slot_end - Exp(λ)`` — giving the prober exactly the
        P(hit) = 1 - exp(-λ·TTL) a real cache shows.
        """
        events: list[tuple[float, object, object]] = []
        slot_days = slot / DAY
        for block in self.world.blocks:
            if not block.has_clients:
                continue
            # Humans follow the local diurnal curve; bots run 24/7 —
            # the temporal contrast §6 proposes as a human-vs-bot
            # signal.
            factor = diurnal_factor(start, block.location.lon,
                                    self.config.diurnal_amplitude)
            self._plan_browse(events, block, start, slot,
                              slot_days * factor, slot_days)
            self._plan_chromium(events, block, start, slot,
                                slot_days * factor)
        events.sort(key=lambda e: e[0])
        clock = self.world.clock
        for timestamp, action, args in events:
            clock.advance_to(timestamp)
            action(*args)

    def _plan_browse(
        self,
        events: list,
        block: ClientBlock,
        start: float,
        slot: float,
        scaled_days: float,
        flat_days: float,
    ) -> None:
        config = self.config
        rng = self._rng
        end = start + slot
        dns_budget = (
            block.users * config.dns_events_per_user * scaled_days
            + block.bots * config.dns_events_per_user
            * config.bot_dns_multiplier * flat_days
        )
        for domain, share in self._block_domain_shares(block):
            rate = dns_budget * share
            # One representative resolution if any query occurred this
            # slot, stamped at the time of the *last* query.
            if rate <= 0 or rng.random() > -math.expm1(-rate):
                continue
            age = rng.expovariate(rate / slot)
            timestamp = max(start, end - age)
            events.append((timestamp, self._do_dns_event, (block, domain)))
        # HTTP to the CDN: volume matters for the Microsoft clients
        # dataset, so sample a real count rather than a Bernoulli.
        # Narrow-mix bot blocks that never *resolve* the CDN's domain
        # still fetch from the CDN occasionally (cached addresses,
        # hardcoded endpoints) — a major CDN sees virtually every
        # client network, which is what makes it usable ground truth.
        http_rate = (block.users * config.http_requests_per_user * scaled_days
                     + block.bots * config.http_requests_per_user * flat_days)
        if not any(domain.name == self.world.cdn.domain
                   for domain, _ in self._block_domain_shares(block)):
            http_rate *= 0.2
        requests = self._poisson(http_rate)
        if requests > 0:
            events.append((
                start + rng.random() * slot,
                self._do_http,
                (block, requests),
            ))

    def _plan_chromium(
        self,
        events: list,
        block: ClientBlock,
        start: float,
        slot: float,
        scaled_days: float,
    ) -> None:
        config = self.config
        rng = self._rng
        count = self._poisson(
            block.users * block.chromium_share
            * config.chromium_events_per_user * scaled_days
        )
        for _ in range(count):
            events.append((start + rng.random() * slot,
                           self._do_chromium_event, (block,)))
        leaks = self._poisson(
            block.users * config.leak_queries_per_user * scaled_days
        )
        for _ in range(leaks):
            events.append((start + rng.random() * slot,
                           self._do_leak, (block,)))

    def _block_domain_shares(
        self, block: ClientBlock
    ) -> list[tuple[DomainSpec, float]]:
        """The domain mix a block's clients query.

        Humans browse the country's full popularity distribution;
        bot-only blocks are single-purpose machines hitting a narrow,
        per-block set of targets (which is why §6 proposes "activity
        across a range of user-facing services" as a human signal).
        """
        if block.users > 0:
            return self._domain_shares[block.country]
        cached = self._bot_domain_shares.get(block.slash24)
        if cached is None:
            full = self._domain_shares[block.country]
            rng = random.Random(block.slash24 * 2654435761 % 2**32)
            picks = rng.sample(range(len(full)), k=min(3, len(full)))
            total = sum(full[i][1] for i in picks) or 1.0
            cached = [(full[i][0], full[i][1] / total) for i in picks]
            self._bot_domain_shares[block.slash24] = cached
        return cached

    # -- event executors -------------------------------------------------

    def _do_dns_event(self, block: ClientBlock, domain: DomainSpec) -> None:
        client_ip = self._client_ip(block)
        resolver_ip = self._resolve(block, domain, client_ip)
        self.stats.dns_queries += 1
        name = str(domain.name)
        self.stats.per_domain_queries[name] = (
            self.stats.per_domain_queries.get(name, 0) + 1
        )
        if domain.name == self.world.cdn.domain:
            self.world.cdn.record_session(client_ip, resolver_ip)

    def _do_http(self, block: ClientBlock, requests: int) -> None:
        self.world.cdn.record_http(self._client_ip(block), requests)
        self.stats.http_requests += requests

    def _do_chromium_event(self, block: ClientBlock) -> None:
        self.stats.chromium_events += 1
        client_ip = self._client_ip(block)
        for name in chromium_probe_names(self._rng):
            self._resolve_raw(block, name, client_ip)
            self.stats.root_queries += 1

    def _do_leak(self, block: ClientBlock) -> None:
        self._resolve_raw(block, leaked_label(self._rng), self._client_ip(block))
        self.stats.root_queries += 1

    # -- resolution paths -------------------------------------------------

    def _resolve(self, block: ClientBlock, domain: DomainSpec,
                 client_ip: int) -> int:
        """Resolve through the block's DNS path; returns the resolver IP
        the authoritative side would observe."""
        return self._resolve_raw(block, domain.name, client_ip)

    def _resolve_raw(self, block: ClientBlock, name, client_ip: int) -> int:
        world = self.world
        use_google = (
            block.resolver_ip == 0
            or self._rng.random() < block.google_dns_share
        )
        if use_google:
            outcome = world.public_dns.query(
                DnsQuery(name=name, source_ip=client_ip,
                         transport=Transport.UDP),
                block.location,
            )
            self.stats.google_dns_queries += 1
            return world.public_dns.site(outcome.pop_id).egress_ip
        resolver = world.resolvers[block.resolver_ip]
        resolver.resolve(name, client_ip=client_ip)
        return resolver.ip

    def _client_ip(self, block: ClientBlock) -> int:
        # .250+ are reserved for resolvers hosted inside client blocks.
        return block.prefix.network + self._rng.randrange(1, 250)

    def _poisson(self, mean: float) -> int:
        """Poisson sample (Knuth for small means, normal approx above)."""
        if mean <= 0:
            return 0
        if mean > 50:
            return max(0, round(self._rng.gauss(mean, math.sqrt(mean))))
        limit = math.exp(-mean)
        count = 0
        product = self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count
