"""Content-provider peering (§1's motivating example).

The paper opens with the 2015 observation that Google peered directly
with 41% of networks overall but **61% of networks hosting end users**
[11] — weighting by user presence flips the "how long are paths from
the cloud?" answer.  To reproduce that analysis we need a peering
model: content providers preferentially peer with networks that source
traffic, i.e. big eyeball ASes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.asn import ASCategory
from repro.world.builder import World


@dataclass(frozen=True, slots=True)
class PeeringPolicy:
    """How eagerly a content provider peers.

    Peering probability grows with the candidate AS's user count —
    content providers chase eyeball traffic — with a floor for the
    long tail (IXP route servers pick up small ASes too).
    ``saturation_users`` is the user count at which the probability
    tops out; :class:`PeeringMatrix` scales it to the world's own AS
    sizes when not given explicitly.
    """

    base_probability: float = 0.12
    saturation_users: float = 3000.0
    max_probability: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_probability <= 1.0:
            raise ValueError("base_probability out of [0, 1]")
        if self.saturation_users <= 0:
            raise ValueError("saturation_users must be positive")

    def probability(self, users: int) -> float:
        """Peering probability for an AS with ``users`` users."""
        scaled = min(1.0, users / self.saturation_users)
        return min(self.max_probability,
                   self.base_probability
                   + (self.max_probability - self.base_probability) * scaled)

    @classmethod
    def scaled_to(cls, users_by_asn: dict[int, int]) -> "PeeringPolicy":
        """A policy whose saturation sits at the 80th percentile of the
        user-hosting ASes — "big eyeball network" relative to this
        world, whatever its absolute scale."""
        sizes = sorted(u for u in users_by_asn.values() if u > 0)
        if not sizes:
            return cls()
        p80 = sizes[min(len(sizes) - 1, int(0.8 * len(sizes)))]
        return cls(saturation_users=max(1.0, float(p80)))


class PeeringMatrix:
    """Which ASes a content provider peers with directly."""

    def __init__(
        self,
        world: World,
        policy: PeeringPolicy | None = None,
        seed: int = 47,
    ) -> None:
        rng = random.Random(seed)
        users_by_asn = world.true_users_by_asn()
        self._policy = policy or PeeringPolicy.scaled_to(users_by_asn)
        self._peers: set[int] = set()
        for record in world.registry:
            users = users_by_asn.get(record.asn, 0)
            probability = self._policy.probability(users)
            # Hosting/content networks interconnect moderately
            # regardless of eyeballs (transit and IXP fabric).
            if record.category in (ASCategory.HOSTING, ASCategory.CONTENT):
                probability = max(probability, 0.3)
            if rng.random() < probability:
                self._peers.add(record.asn)

    def peers_with(self, asn: int) -> bool:
        """Whether the provider has a direct peering with ``asn``."""
        return asn in self._peers

    def peer_asns(self) -> set[int]:
        """All directly peered ASNs."""
        return set(self._peers)

    def direct_share(self, asns: set[int]) -> float:
        """Share of ``asns`` reached over a direct peering — "one hop
        away" in the paper's framing."""
        if not asns:
            return 0.0
        return len(asns & self._peers) / len(asns)
