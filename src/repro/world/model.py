"""Core data model of the synthetic Internet.

The world is materialised at /24 granularity: a :class:`ClientBlock` is
one /24 with its true location, user/bot population, and DNS behaviour.
Ground truth lives here — which blocks actually contain clients — so
every measurement technique can be scored exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.geo import GeoPoint
from repro.net.prefix import Prefix
from repro.dns.anycast import PoP
from repro.dns.name import DnsName


@dataclass(frozen=True, slots=True)
class ClientBlock:
    """One /24 and everything that lives inside it.

    ``users`` counts humans with browsers; ``bots`` counts non-human
    web clients (crawlers, monitors — hosting ASes are full of them).
    A block with neither is announced-but-empty address space, the
    false-positive bait for the techniques.
    """

    prefix: Prefix
    asn: int
    country: str
    location: GeoPoint
    users: int
    bots: int = 0
    resolver_ip: int = 0
    google_dns_share: float = 0.32
    chromium_share: float = 0.70

    def __post_init__(self) -> None:
        if self.prefix.length != 24:
            raise ValueError(f"client blocks are /24s, got {self.prefix}")
        if self.users < 0 or self.bots < 0:
            raise ValueError("negative population")
        if not 0.0 <= self.google_dns_share <= 1.0:
            raise ValueError("google_dns_share out of [0, 1]")
        if not 0.0 <= self.chromium_share <= 1.0:
            raise ValueError("chromium_share out of [0, 1]")

    @property
    def slash24(self) -> int:
        """The /24 block id (network >> 8)."""
        return self.prefix.network >> 8

    @property
    def has_clients(self) -> bool:
        """Whether anyone (user or bot) lives here."""
        return self.users > 0 or self.bots > 0

    @property
    def client_count(self) -> int:
        """Users plus bots."""
        return self.users + self.bots


@dataclass(frozen=True, slots=True)
class DomainSpec:
    """One web property the world's clients visit.

    ``weight`` is the Zipf-ish popularity mass used by the activity
    simulator; ``country_weight`` overrides it per country (e.g. the
    Google properties are nearly absent from Chinese client traffic).
    """

    name: DnsName
    rank: int
    supports_ecs: bool
    ttl: float
    weight: float
    operator: str = "misc"
    country_weight: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError("rank starts at 1")
        if self.ttl <= 0:
            raise ValueError("TTL must be positive")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")

    def weight_in(self, country: str) -> float:
        """Popularity weight in the given country."""
        return self.country_weight.get(country, self.weight)


@dataclass(frozen=True, slots=True)
class PopDescriptor:
    """A Google Public DNS PoP plus the world's view of it.

    ``cloud_reachable`` says whether anycast from cloud datacentres
    lands there; the paper could only probe PoPs reachable from AWS and
    Vultr (22 of 45).  An inactive PoP serves nobody at all.
    """

    pop: PoP
    cloud_reachable: bool

    @property
    def pop_id(self) -> str:
        """The underlying PoP's identifier."""
        return self.pop.pop_id

    @property
    def active(self) -> bool:
        """Whether the PoP serves traffic at all."""
        return self.pop.active
