"""Command-line interface.

::

    python -m repro run [--preset small|medium|large] [--seed N]
                        [--checkpoint-dir DIR] [--snapshot-every N]
                        [--workers N]
                        [--section headline|table1..table5|figure1..figure7|
                                   asdb|extensions|scorecard|all]
    python -m repro resume --checkpoint-dir DIR [--section ...]
    python -m repro serve --checkpoint-dir DIR [--windows N]
                          [--window-hours H] [--budget N] [--resume]
    python -m repro fsck --checkpoint-dir DIR [--repair] [--json]
    python -m repro top DIR [--once] [--interval S]
    python -m repro trace DIR [--json]
    python -m repro diff-trace DIR_A DIR_B
    python -m repro export --out DIR [--preset ...] [--seed N]
    python -m repro export DIR [--format openmetrics|jsonl] [--out DIR]
    python -m repro collisions [--volume N] [--threshold N]
    python -m repro presets
    python -m repro scenarios
    python -m repro sweep --hours 3,6,12 [--redundancy 1,3,5]

``diff-trace`` localizes the first divergent span between two recorded
telemetry trees (exit 0 identical, 1 divergent); ``export DIR`` turns
a run's telemetry artifacts into OpenMetrics text exposition or JSONL.
``run`` executes the full measurement study and prints paper-style
sections; with ``--checkpoint-dir`` progress is journaled and
snapshotted so a killed run can be continued with ``resume`` to the
identical result (see docs/checkpointing.md).  ``serve`` operates the
probing as a supervised continuous service — rolling windows,
per-window deltas, self-healing restarts and graceful degradation (see
docs/continuous.md).  ``export`` writes the shareable artefacts
(active prefix lists, resolver counts, unified datasets) to a
directory; ``collisions`` runs the §3.2 Monte-Carlo threshold check
without building a world.  ``run`` and ``serve`` record deterministic
telemetry by default (metrics, trace spans, a phase profile — see
docs/observability.md); ``--no-telemetry`` turns it off, ``top``
renders the live dashboard over a running campaign's telemetry
directory and ``trace`` summarizes a recorded span stream offline.
``fsck`` scans a checkpoint directory for
damage — torn journal tails, bit rot, swapped files, cross-reference
breaks — and with ``--repair`` quarantines what cannot be trusted and
rolls the checkpoint back to its last consistent state (exit 0 clean /
repaired, 1 damage found, 2 unrepairable).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments import report as report_mod

_SECTIONS = {
    "headline": report_mod.headline,
    "table1": report_mod.table1,
    "table2": report_mod.table2,
    "table3": report_mod.table3,
    "table4": report_mod.table4,
    "table5": report_mod.table5,
    "asdb": report_mod.asdb_missed,
    "extensions": report_mod.extensions,
    "scorecard": report_mod.scorecard,
    "health": report_mod.probe_health,
    "figure1": report_mod.figure1,
    "figure2": report_mod.figure2,
    "figure3": report_mod.figure3,
    "figure4": report_mod.figure4,
    "figure5": report_mod.figure5,
    "figure6": report_mod.figure6,
    "figure7": report_mod.figure7,
}

_PRESETS = {
    "small": ExperimentConfig.small,
    "medium": ExperimentConfig.medium,
    "large": ExperimentConfig.large,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Towards Identifying Networks with "
                    "Internet Clients Using Public Data' (IMC 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the measurement study")
    run.add_argument("--preset", choices=sorted(_PRESETS), default="small")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--section", choices=["all", *sorted(_SECTIONS)],
                     default="all",
                     help="which report section to print (default: all)")
    from repro.world.scenarios import SCENARIOS
    run.add_argument("--scenario", choices=sorted(SCENARIOS),
                     default="default",
                     help="world scenario variant (default: default)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="journal + snapshot progress here so a killed "
                          "run can be resumed (`repro resume`)")
    run.add_argument("--snapshot-every", type=int, default=8, metavar="N",
                     help="snapshot cadence in probing slots "
                          "(default: 8; needs --checkpoint-dir)")
    run.add_argument("--snapshot-keep", type=int, default=2, metavar="N",
                     help="snapshot generations to retain (default: 2); "
                          "more generations deepen the `repro fsck "
                          "--repair` rollback horizon")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="shard the campaign over N processes; the "
                          "merged result is bit-identical to --workers 1 "
                          "(default: 1, see docs/parallelism.md)")
    run.add_argument("--no-telemetry", action="store_true",
                     help="disable the metrics/spans/profile recorder "
                          "(results are byte-identical either way)")
    run.add_argument("--trace-slot-every", type=int, default=1,
                     metavar="N",
                     help="record a trace span for every Nth probing "
                          "slot (default: 1 = all; 0 = none)")

    resume = sub.add_parser(
        "resume",
        help="resume a crashed checkpointed run to the identical result",
    )
    resume.add_argument("--checkpoint-dir", required=True, metavar="DIR",
                        help="checkpoint directory of the dead run")
    resume.add_argument("--section", choices=["all", *sorted(_SECTIONS)],
                        default="all",
                        help="which report section to print (default: all)")

    serve = sub.add_parser(
        "serve",
        help="run the continuous measurement service "
             "(supervised rolling windows)",
    )
    serve.add_argument("--checkpoint-dir", required=True, metavar="DIR",
                       help="service state directory (journal, snapshots, "
                            "window deltas)")
    serve.add_argument("--preset", choices=sorted(_PRESETS),
                       default="small")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--windows", type=int, default=8, metavar="N",
                       help="rolling measurement windows to run "
                            "(default: 8)")
    serve.add_argument("--window-hours", type=float, default=1.0,
                       metavar="H",
                       help="sim-hours per window (default: 1.0)")
    serve.add_argument("--budget", type=int, default=None, metavar="N",
                       help="max targets probed per window "
                            "(default: every due target)")
    serve.add_argument("--snapshot-every", type=int, default=8,
                       metavar="N",
                       help="snapshot cadence in probing slots "
                            "(default: 8)")
    serve.add_argument("--snapshot-keep", type=int, default=2,
                       metavar="N",
                       help="snapshot generations to retain (default: "
                            "2); more generations deepen the `repro "
                            "fsck --repair` rollback horizon over past "
                            "windows")
    serve.add_argument("--max-restarts", type=int, default=16, metavar="N",
                       help="supervisor restart budget (default: 16)")
    serve.add_argument("--resume", action="store_true",
                       help="resume an interrupted service from its "
                            "checkpoint directory")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the metrics/spans/profile recorder "
                            "(window deltas are byte-identical either "
                            "way)")

    fsck = sub.add_parser(
        "fsck",
        help="scan a checkpoint directory for damage; --repair "
             "quarantines corrupt artifacts and rolls back to the "
             "last consistent state",
    )
    fsck.add_argument("--checkpoint-dir", required=True, metavar="DIR",
                      help="checkpoint directory to verify")
    fsck.add_argument("--repair", action="store_true",
                      help="apply the repair policy instead of only "
                           "reporting (damaged artifacts move to "
                           "quarantine/)")
    fsck.add_argument("--json", action="store_true",
                      help="emit the findings as JSON on stdout")

    top = sub.add_parser(
        "top",
        help="live dashboard over a campaign/service telemetry "
             "directory (snapshot mode when stdout is not a TTY)",
    )
    top.add_argument("directory", metavar="DIR",
                     help="checkpoint/campaign directory holding "
                          "telemetry/ artifacts")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="refresh interval in seconds (default: 2)")

    trace = sub.add_parser(
        "trace",
        help="summarize recorded trace span streams offline",
    )
    trace.add_argument("directory", metavar="DIR",
                       help="directory holding telemetry/spans.bin "
                            "(and shard-*/telemetry/spans.bin)")
    trace.add_argument("--json", action="store_true",
                       help="emit the summary as canonical JSON")

    diff_trace = sub.add_parser(
        "diff-trace",
        help="find the first divergent span between two recorded "
             "telemetry trees (exit 0 identical, 1 divergent)",
    )
    diff_trace.add_argument("dir_a", metavar="DIR_A",
                            help="first telemetry tree (campaign or "
                                 "shard directory)")
    diff_trace.add_argument("dir_b", metavar="DIR_B",
                            help="second telemetry tree to compare")

    export = sub.add_parser(
        "export",
        help="write shareable measurement artefacts (JSON/CSV), or "
             "with a positional DIR export that run's telemetry as "
             "OpenMetrics/JSONL",
    )
    export.add_argument("directory", nargs="?", default=None,
                        metavar="DIR",
                        help="telemetry-export mode: a checkpoint/"
                             "campaign directory holding telemetry/ "
                             "artifacts")
    export.add_argument("--format", choices=["openmetrics", "jsonl"],
                        default="openmetrics", dest="fmt",
                        help="telemetry export format "
                             "(default: openmetrics)")
    export.add_argument("--out", default=None,
                        help="output directory (created if missing; "
                             "telemetry mode defaults to DIR/export)")
    export.add_argument("--preset", choices=sorted(_PRESETS),
                        default="small")
    export.add_argument("--seed", type=int, default=42)

    collisions = sub.add_parser(
        "collisions",
        help="§3.2 Monte-Carlo justification of the daily threshold",
    )
    collisions.add_argument("--volume", type=int, default=10_000_000,
                            help="Chromium probes per day")
    collisions.add_argument("--threshold", type=int, default=7)
    collisions.add_argument("--trials", type=int, default=20)

    sub.add_parser("presets", help="describe the experiment presets")
    sub.add_parser("scenarios", help="list the named world scenarios")

    sweep_cmd = sub.add_parser(
        "sweep", help="sweep probing parameters against ground truth")
    sweep_cmd.add_argument("--hours", default="",
                           help="comma-separated measurement windows")
    sweep_cmd.add_argument("--redundancy", default="",
                           help="comma-separated redundancy values")
    sweep_cmd.add_argument("--seed", type=int, default=42)
    sweep_cmd.add_argument("--blocks", type=int, default=160,
                           help="world size (client /24s)")
    sweep_cmd.add_argument("--csv", action="store_true",
                           help="emit CSV instead of a table")
    return parser


def _telemetry_context(disabled: bool, directory: str | None,
                       slot_every: int = 1):
    """An activation context for the CLI's ambient telemetry bundle.

    Disabled runs get the no-op singleton context; enabled runs stream
    spans into ``directory``/telemetry/ when a directory exists, and
    keep metrics in memory otherwise.  Either way the campaign result
    is byte-identical — telemetry is provably inert.
    """
    import contextlib

    from repro.obs import TraceConfig
    from repro.obs import runtime as obs_runtime

    if disabled:
        return contextlib.nullcontext(obs_runtime.DISABLED)
    telemetry = obs_runtime.telemetry_for_dir(
        directory, TraceConfig(slot_every=slot_every))
    return obs_runtime.activate(telemetry)


def _command_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.world.scenarios import scenario as make_scenario

    config = _PRESETS[args.preset](seed=args.seed)
    scenario_name = getattr(args, "scenario", "default")
    if scenario_name != "default":
        world_config = make_scenario(
            scenario_name, seed=args.seed,
            target_blocks=config.world.target_blocks,
        )
        config = dataclasses.replace(config, world=world_config)
    print(f"repro: running {args.preset} experiment "
          f"(seed={args.seed}, scenario={scenario_name})...",
          file=sys.stderr)
    started = time.time()
    with _telemetry_context(args.no_telemetry, args.checkpoint_dir,
                            args.trace_slot_every) as telemetry:
        if args.checkpoint_dir is not None:
            from repro.persist.campaign import CheckpointConfig

            result = run_experiment(
                config,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_config=CheckpointConfig(
                    snapshot_every_slots=args.snapshot_every,
                    keep_snapshots=args.snapshot_keep),
                workers=args.workers,
            )
        else:
            result = run_experiment(config, workers=args.workers)
        telemetry.close()
    print(f"repro: done in {time.time() - started:.0f}s",
          file=sys.stderr)
    if args.section == "all":
        print(report_mod.full_report(result))
    else:
        print(_SECTIONS[args.section](result))
    return 0


def _fail(message: str) -> int:
    """One-line diagnostic on stderr, nonzero exit."""
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _serial_checkpoint_problem(directory: str) -> str | None:
    """Why a serial checkpoint directory cannot be resumed (or None).

    Checked *before* touching the recovery machinery, which would
    otherwise create the directory as a side effect and turn a typo'd
    path into an empty checkpoint tree.
    """
    import pathlib

    from repro.persist.journal import MAGIC

    path = pathlib.Path(directory)
    if not path.is_dir():
        return f"checkpoint directory {directory} does not exist"
    journal = path / "journal.bin"
    if not journal.exists():
        return (f"{directory} holds no campaign journal — "
                "nothing to resume")
    if journal.stat().st_size <= len(MAGIC):
        return (f"{directory} holds an empty journal — the campaign "
                "never recorded progress; run it from scratch")
    return None


def _preflight_problem(directory: str) -> str | None:
    """Why the integrity pre-flight refuses to resume (or None).

    Benign crash residue passes; mid-file corruption and
    cross-reference breaks block the resume with a pointer at
    ``repro fsck --repair``.
    """
    from repro.persist.integrity import IntegrityError, assert_resumable

    try:
        assert_resumable(directory)
    except IntegrityError as exc:
        return str(exc)
    return None


def _parallel_version_problem(directory: str) -> str | None:
    """A one-line refusal for unsupported parallel manifest versions.

    Runs before the integrity pre-flight so a ghost-era (v1) tree gets
    the targeted diagnostic rather than a scan of snapshots it will
    never be allowed to load anyway.
    """
    import json as json_mod
    import pathlib

    from repro.parallel.driver import (
        MANIFEST_FILE,
        MANIFEST_FORMAT,
        MANIFEST_FORMAT_V1,
    )

    try:
        meta = json_mod.loads(
            (pathlib.Path(directory) / MANIFEST_FILE).read_text())
    except (ValueError, OSError):
        return None  # the integrity pre-flight owns corrupt manifests
    version = meta.get("format")
    if version == MANIFEST_FORMAT:
        return None
    if version == MANIFEST_FORMAT_V1:
        return (
            f"{directory} holds a ghost-era ({MANIFEST_FORMAT_V1}) "
            "parallel checkpoint; its snapshots embed the old "
            "full-schedule walk — rerun the campaign to produce a "
            f"{MANIFEST_FORMAT} checkpoint"
        )
    return f"unsupported parallel manifest format {version!r}"


def _command_resume(args: argparse.Namespace) -> int:
    from repro.parallel import (
        is_parallel_checkpoint,
        resume_parallel_campaign,
    )
    from repro.persist.campaign import CheckpointError, resume_campaign
    from repro.persist.journal import JournalError
    from repro.service import is_service_checkpoint

    try:
        if is_service_checkpoint(args.checkpoint_dir):
            return _fail(
                f"{args.checkpoint_dir} holds a continuous-service "
                "checkpoint; resume it with `repro serve --resume`")
        parallel = is_parallel_checkpoint(args.checkpoint_dir)
        if parallel:
            problem = _parallel_version_problem(args.checkpoint_dir)
            if problem is not None:
                return _fail(problem)
        else:
            problem = _serial_checkpoint_problem(args.checkpoint_dir)
            if problem is not None:
                return _fail(problem)
        problem = _preflight_problem(args.checkpoint_dir)
        if problem is not None:
            return _fail(problem)
        print(f"repro: resuming campaign from {args.checkpoint_dir}...",
              file=sys.stderr)
        started = time.time()
        if parallel:
            result = resume_parallel_campaign(args.checkpoint_dir)
        else:
            result = resume_campaign(args.checkpoint_dir)
    except (CheckpointError, JournalError) as exc:
        return _fail(str(exc))
    print(f"repro: done in {time.time() - started:.0f}s",
          file=sys.stderr)
    if args.section == "all":
        print(report_mod.full_report(result))
    else:
        print(_SECTIONS[args.section](result))
    return 0


def _render_service(result) -> str:
    from repro.service import render_coverage_over_time

    account = result.aggregate["accounting"]
    lines = [
        f"continuous service: {result.windows} windows, final health "
        f"{result.final_state}, {result.restarts} supervisor "
        f"restart(s), {result.aggregate['watchdog_cuts']} watchdog "
        "cut(s)",
        f"  accounting: scheduled={account['scheduled']:,} "
        f"covered={account['covered']:,} "
        f"uncovered={account['uncovered']:,} shed={account['shed']:,} "
        f"budget_dropped={account['budget_dropped']:,}",
        render_coverage_over_time(result.churn()),
    ]
    transitions = result.aggregate["transitions"]
    if transitions:
        moves = ", ".join(f"w{window}: {old}→{new}"
                          for window, old, new in transitions)
        lines.append(f"  health transitions: {moves}")
    return "\n".join(lines)


def _command_serve(args: argparse.Namespace) -> int:
    from repro.persist.campaign import CheckpointConfig, CheckpointError
    from repro.persist.journal import JournalError
    from repro.service import ServiceConfig, resume_service, supervise

    checkpoint_config = CheckpointConfig(
        snapshot_every_slots=args.snapshot_every,
        keep_snapshots=args.snapshot_keep)
    started = time.time()
    try:
        if args.resume:
            from repro.service import is_service_checkpoint

            problem = _serial_checkpoint_problem(args.checkpoint_dir)
            # The pre-flight runs only on directories that really are
            # ours: resume_service owns the wrong-kind diagnostics.
            if problem is None \
                    and is_service_checkpoint(args.checkpoint_dir):
                problem = _preflight_problem(args.checkpoint_dir)
            if problem is not None:
                return _fail(problem)
            print(f"repro: resuming service from "
                  f"{args.checkpoint_dir}...", file=sys.stderr)
            # The snapshot's own telemetry bundle (or its absence)
            # rides the pickle; resume_service reactivates it.
            result = resume_service(args.checkpoint_dir,
                                    checkpoint_config)
        else:
            config = _PRESETS[args.preset](seed=args.seed)
            service_config = ServiceConfig(
                windows=args.windows,
                window_hours=args.window_hours,
                window_target_budget=args.budget,
            )
            print(f"repro: serving {args.windows} windows of "
                  f"{args.window_hours:g} sim-hour(s) "
                  f"(preset={args.preset}, seed={args.seed})...",
                  file=sys.stderr)
            # run_service attaches the span stream to the checkpoint
            # directory itself; no directory is passed here.
            with _telemetry_context(args.no_telemetry, None):
                result = supervise(
                    config, service_config,
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_config=checkpoint_config,
                    max_restarts=args.max_restarts,
                )
    except (CheckpointError, JournalError) as exc:
        return _fail(str(exc))
    print(f"repro: done in {time.time() - started:.0f}s",
          file=sys.stderr)
    print(_render_service(result))
    return 0


def _command_fsck(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    import pathlib

    from repro.persist.integrity import (
        UnrepairableError,
        repair_checkpoint,
        scan_checkpoint,
    )

    directory = pathlib.Path(args.checkpoint_dir)
    if not directory.is_dir():
        return _fail(
            f"checkpoint directory {args.checkpoint_dir} does not exist")
    report = scan_checkpoint(directory)
    if not args.repair:
        if args.json:
            print(json.dumps({
                "directory": str(report.directory),
                "kind": report.checkpoint_kind,
                "clean": report.clean,
                "stats": report.stats.as_dict(),
                "findings": [dataclasses.asdict(f)
                             for f in report.findings],
            }, sort_keys=True, indent=2))
        else:
            print(report.render())
        if report.unrepairable:
            return 2
        return 0 if report.clean else 1
    try:
        repair = repair_checkpoint(directory)
    except UnrepairableError as exc:
        return _fail(str(exc))
    if args.json:
        assert repair.after is not None
        print(json.dumps({
            "directory": str(repair.directory),
            "kind": repair.after.checkpoint_kind,
            "actions": repair.actions,
            "clean": repair.after.clean,
            "stats": repair.after.stats.as_dict(),
            "findings": [dataclasses.asdict(f)
                         for f in repair.after.findings],
        }, sort_keys=True, indent=2))
    else:
        print(repair.render())
    return 0


def _command_top(args: argparse.Namespace) -> int:
    import pathlib

    from repro.obs.top import run_top

    if not pathlib.Path(args.directory).is_dir():
        return _fail(f"directory {args.directory} does not exist")
    return run_top(args.directory, once=args.once,
                   interval=args.interval)


def _command_trace(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.obs.top import summarize_trace, summarize_trace_json

    if not pathlib.Path(args.directory).is_dir():
        return _fail(f"directory {args.directory} does not exist")
    if args.json:
        print(json.dumps(summarize_trace_json(args.directory),
                         sort_keys=True, indent=2))
    else:
        print(summarize_trace(args.directory))
    return 0


def _command_diff_trace(args: argparse.Namespace) -> int:
    import pathlib

    from repro.obs.difftrace import diff_traces, render_diff

    for directory in (args.dir_a, args.dir_b):
        if not pathlib.Path(directory).is_dir():
            return _fail(f"directory {directory} does not exist")
    diff = diff_traces(args.dir_a, args.dir_b)
    print(render_diff(diff))
    return 0 if diff.identical else 1


def _export_telemetry(args: argparse.Namespace) -> int:
    import pathlib

    from repro.obs.export import ExportError, export_telemetry

    directory = pathlib.Path(args.directory)
    if not directory.is_dir():
        return _fail(f"directory {args.directory} does not exist")
    out = pathlib.Path(args.out) if args.out else directory / "export"
    try:
        written = export_telemetry(directory, out, args.fmt)
    except ExportError as exc:
        return _fail(str(exc))
    for path in written:
        print(f"wrote {path}")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    import pathlib

    from repro.core.export import (
        active_prefixes_to_csv,
        cache_probing_to_json,
        dataset_to_json,
        dns_logs_to_json,
    )

    if args.directory is not None:
        return _export_telemetry(args)
    if args.out is None:
        return _fail("experiment-export mode requires --out "
                     "(or pass a telemetry directory)")
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    config = _PRESETS[args.preset](seed=args.seed)
    print(f"repro: running {args.preset} experiment (seed={args.seed})...",
          file=sys.stderr)
    result = run_experiment(config)
    written = []
    for name, text in [
        ("cache_probing.json", cache_probing_to_json(result.cache_result)),
        ("active_prefixes.csv",
         active_prefixes_to_csv(result.cache_result)),
        ("dns_logs.json", dns_logs_to_json(result.logs_result)),
    ]:
        (out / name).write_text(text)
        written.append(name)
    for dataset_name, dataset in result.datasets.items():
        slug = dataset_name.replace(" ", "_").replace("∪", "union")
        filename = f"dataset_{slug}.json"
        (out / filename).write_text(dataset_to_json(dataset))
        written.append(filename)
    for name in written:
        print(f"wrote {out / name}")
    return 0


def _command_collisions(args: argparse.Namespace) -> int:
    from repro.core.chromium import (
        collision_threshold_confidence,
        expected_collision_rate,
        pick_threshold,
    )
    confidence = collision_threshold_confidence(
        args.volume, args.threshold, trials=args.trials)
    print(f"probes/day: {args.volume:,}")
    print(f"expected colliding pairs: "
          f"{expected_collision_rate(args.volume):.1f}")
    print(f"P(max daily repeats < {args.threshold}): {confidence:.2%}")
    print(f"smallest threshold at 99% confidence: "
          f"{pick_threshold(args.volume, trials=max(5, args.trials // 2))}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.experiments.sweep import render_table, sweep, to_csv

    grid = []
    for token in filter(None, args.hours.split(",")):
        grid.append({"measurement_hours": float(token)})
    for token in filter(None, args.redundancy.split(",")):
        grid.append({"redundancy": int(token)})
    if not grid:
        print("nothing to sweep: pass --hours and/or --redundancy",
              file=sys.stderr)
        return 2
    base = ExperimentConfig.small(seed=args.seed)
    base = dataclasses.replace(
        base, world=dataclasses.replace(base.world,
                                        target_blocks=args.blocks))
    print(f"repro: sweeping {len(grid)} points "
          f"(seed={args.seed}, ~{args.blocks} blocks)...", file=sys.stderr)
    points = sweep(base, grid)
    print(to_csv(points) if args.csv else render_table(points))
    return 0


def _command_scenarios(_args: argparse.Namespace) -> int:
    from repro.world.scenarios import SCENARIOS, compare, describe

    for name in sorted(SCENARIOS):
        changed = compare(name)
        delta = ", ".join(f"{k}: {a} → {b}" for k, (a, b) in changed.items())
        print(f"{name}: {describe(name).splitlines()[0]}")
        if delta:
            print(f"    changes: {delta}")
    return 0


def _command_presets(_args: argparse.Namespace) -> int:
    for name, factory in sorted(_PRESETS.items()):
        config = factory()
        print(f"{name}: ~{config.world.target_blocks} client /24s, "
              f"{config.probing.measurement_hours:.0f}h probing, "
              f"redundancy {config.probing.redundancy}, "
              f"{config.apnic_impressions:,} APNIC impressions")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "resume": _command_resume,
        "serve": _command_serve,
        "fsck": _command_fsck,
        "top": _command_top,
        "trace": _command_trace,
        "diff-trace": _command_diff_trace,
        "export": _command_export,
        "collisions": _command_collisions,
        "presets": _command_presets,
        "scenarios": _command_scenarios,
        "sweep": _command_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
